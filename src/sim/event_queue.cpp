#include "sim/event_queue.h"

#include <algorithm>

#include "util/check.h"

namespace armada::sim {

namespace {

constexpr std::size_t kNoBucket = static_cast<std::size_t>(-1);
constexpr std::size_t kMinBuckets = 16;
/// Below this width, window indices of far-future events would overflow;
/// equal-time batches are handled by the sorted-bucket path instead.
constexpr double kMinWidth = 1e-9;
/// A bucket with more current-window events than this is sorted once and
/// popped from its back, so equal-time batches dispatch in O(log k) per
/// event instead of O(k).
constexpr std::size_t kSortThreshold = 16;

/// The dispatch order: the strict total order (when, seq).
bool earlier(const Time a_when, const std::uint64_t a_seq, const Time b_when,
             const std::uint64_t b_seq) {
  if (a_when != b_when) {
    return a_when < b_when;
  }
  return a_seq < b_seq;
}

}  // namespace

Simulator::Simulator() {
  // Distinct per instance within a process; never reused, so address reuse
  // of stack-allocated simulators cannot alias two runs.
  static std::uint64_t next_id = 0;
  id_ = ++next_id;
  buckets_.resize(kMinBuckets);
  bucket_mask_ = kMinBuckets - 1;
}

void Simulator::schedule_at(Time when, EventFn action) {
  ARMADA_CHECK_MSG(when >= now_, "scheduling into the past");
  insert(Event{when, seq_++, std::move(action)});
}

void Simulator::schedule_after(Time delay, EventFn action) {
  ARMADA_CHECK(delay >= 0.0);
  schedule_at(now_ + delay, std::move(action));
}

void Simulator::insert(Event e) {
  if (count_ + 1 > 2 * buckets_.size()) {
    rebuild(buckets_.size() * 2);
  }
  const std::uint64_t w = window_of(e.when);
  if (w < window_) {
    window_ = w;  // rewind the cursor: never leave events behind it
  }
  const std::size_t b = static_cast<std::size_t>(w) & bucket_mask_;
  if (b == sorted_bucket_) {
    sorted_bucket_ = kNoBucket;
  }
  buckets_[b].push_back(std::move(e));
  ++count_;
}

Time Simulator::min_when() {
  for (;;) {
    for (std::size_t pass = 0; pass <= bucket_mask_; ++pass) {
      const std::size_t b = static_cast<std::size_t>(window_) & bucket_mask_;
      std::vector<Event>& bk = buckets_[b];
      if (!bk.empty()) {
        if (b == sorted_bucket_) {
          if (window_of(bk.back().when) <= window_) {
            return bk.back().when;
          }
        } else {
          std::size_t best = kNoBucket;
          std::size_t in_window = 0;
          for (std::size_t i = 0; i < bk.size(); ++i) {
            if (window_of(bk[i].when) <= window_) {
              ++in_window;
              if (best == kNoBucket ||
                  earlier(bk[i].when, bk[i].seq, bk[best].when,
                          bk[best].seq)) {
                best = i;
              }
            }
          }
          if (best != kNoBucket) {
            if (in_window > kSortThreshold) {
              // Equal-time batch: order the bucket once, pop from the back.
              std::sort(bk.begin(), bk.end(),
                        [](const Event& x, const Event& y) {
                          return earlier(y.when, y.seq, x.when, x.seq);
                        });
              sorted_bucket_ = b;
              return bk.back().when;
            }
            return bk[best].when;
          }
        }
      }
      ++window_;
    }
    // A whole calendar cycle is empty below the cursor: jump the cursor
    // straight to the window of the globally earliest event.
    const Event* min_event = nullptr;
    for (const std::vector<Event>& bk : buckets_) {
      for (const Event& e : bk) {
        if (min_event == nullptr ||
            earlier(e.when, e.seq, min_event->when, min_event->seq)) {
          min_event = &e;
        }
      }
    }
    ARMADA_CHECK(min_event != nullptr);
    window_ = window_of(min_event->when);
  }
}

Simulator::Event Simulator::pop_min() {
  // min_when() leaves the cursor on the window of the earliest event, so
  // re-locating it within the single bucket of that window is cheap.
  (void)min_when();
  const std::size_t b = static_cast<std::size_t>(window_) & bucket_mask_;
  std::vector<Event>& bk = buckets_[b];
  std::size_t idx;
  if (b == sorted_bucket_) {
    idx = bk.size() - 1;
  } else {
    idx = kNoBucket;
    for (std::size_t i = 0; i < bk.size(); ++i) {
      if (window_of(bk[i].when) <= window_ &&
          (idx == kNoBucket ||
           earlier(bk[i].when, bk[i].seq, bk[idx].when, bk[idx].seq))) {
        idx = i;
      }
    }
  }
  Event out = std::move(bk[idx]);
  if (idx + 1 != bk.size()) {
    bk[idx] = std::move(bk.back());
  }
  bk.pop_back();
  --count_;
  if (buckets_.size() > kMinBuckets && count_ < buckets_.size() / 4) {
    rebuild(buckets_.size() / 2);
  }
  return out;
}

void Simulator::rebuild(std::size_t new_bucket_count) {
  std::vector<Event> pending;
  pending.reserve(count_);
  for (std::vector<Event>& bk : buckets_) {
    for (Event& e : bk) {
      pending.push_back(std::move(e));
    }
    bk.clear();
  }
  buckets_.clear();
  buckets_.resize(new_bucket_count);
  bucket_mask_ = new_bucket_count - 1;
  sorted_bucket_ = kNoBucket;
  count_ = 0;
  if (pending.empty()) {
    window_ = window_of(now_);
    return;
  }
  Time lo = pending.front().when;
  Time hi = lo;
  for (const Event& e : pending) {
    lo = std::min(lo, e.when);
    hi = std::max(hi, e.when);
  }
  if (hi > lo) {
    // Aim for ~1 event per window across the pending span.
    width_ = std::max((hi - lo) / static_cast<double>(pending.size()),
                      kMinWidth);
  }
  window_ = window_of(lo);
  for (Event& e : pending) {
    const std::uint64_t w = window_of(e.when);
    buckets_[static_cast<std::size_t>(w) & bucket_mask_].push_back(
        std::move(e));
    ++count_;
  }
}

void Simulator::run() {
  while (count_ > 0) {
    Event item = pop_min();
    now_ = item.when;
    ++processed_;
    item.fn();
  }
}

void Simulator::run_until(Time horizon) {
  while (count_ > 0 && min_when() <= horizon) {
    Event item = pop_min();
    now_ = item.when;
    ++processed_;
    item.fn();
  }
  now_ = horizon > now_ ? horizon : now_;
}

}  // namespace armada::sim
