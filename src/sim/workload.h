// Workload generators reproducing the paper's setup (§4.3.3): range queries
// of a fixed size whose position is uniform in the attribute interval
// [0, 1000], issued by random peers.
#pragma once

#include <vector>

#include "kautz/partition_tree.h"
#include "util/rng.h"

namespace armada::sim {

/// Single-attribute range query [lo, hi].
struct RangeQuery {
  double lo = 0.0;
  double hi = 0.0;
};

/// Uniformly positioned fixed-size range queries within `domain`.
class RangeWorkload {
 public:
  RangeWorkload(kautz::Interval domain, double query_size, Rng rng);

  RangeQuery next();

  kautz::Interval domain() const { return domain_; }
  double query_size() const { return size_; }

 private:
  kautz::Interval domain_;
  double size_;
  Rng rng_;
};

/// Uniformly positioned fixed-size boxes within a multi-attribute domain.
class BoxWorkload {
 public:
  /// sizes[i] is the query extent along attribute i.
  BoxWorkload(kautz::Box domain, std::vector<double> sizes, Rng rng);

  kautz::Box next();

 private:
  kautz::Box domain_;
  std::vector<double> sizes_;
  Rng rng_;
};

/// Uniform attribute values for populating stores.
class UniformPoints {
 public:
  UniformPoints(kautz::Box domain, Rng rng);

  std::vector<double> next();

 private:
  kautz::Box domain_;
  Rng rng_;
};

/// Zipf-distributed values over `bins` equal slices of the domain: bin i
/// has probability proportional to 1/(i+1)^exponent. Models skewed
/// attribute popularity (used by the load-balance bench).
class ZipfValues {
 public:
  ZipfValues(kautz::Interval domain, std::size_t bins, double exponent,
             Rng rng);

  double next();

 private:
  kautz::Interval domain_;
  std::vector<double> cdf_;
  Rng rng_;
};

/// Mixture-of-Gaussians values clamped to the domain: real-world attributes
/// often cluster (e.g. machine memory sizes).
class ClusteredValues {
 public:
  struct Cluster {
    double center = 0.0;
    double stddev = 1.0;
    double weight = 1.0;
  };

  ClusteredValues(kautz::Interval domain, std::vector<Cluster> clusters,
                  Rng rng);

  double next();

 private:
  kautz::Interval domain_;
  std::vector<Cluster> clusters_;
  std::vector<double> cdf_;
  Rng rng_;
};

}  // namespace armada::sim
