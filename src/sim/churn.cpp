#include "sim/churn.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace armada::sim {

ChurnProcess::ChurnProcess(Config config, std::uint64_t seed)
    : config_(config), seed_(seed) {
  ARMADA_CHECK(config_.join_rate >= 0.0);
  ARMADA_CHECK(config_.leave_rate >= 0.0);
  ARMADA_CHECK(config_.crash_rate >= 0.0);
  ARMADA_CHECK(config_.horizon >= config_.start);
}

std::vector<ChurnEvent> ChurnProcess::events() const {
  const double total =
      config_.join_rate + config_.leave_rate + config_.crash_rate;
  std::vector<ChurnEvent> out;
  if (total <= 0.0) {
    return out;
  }
  // Merged Poisson process: exponential inter-arrival gaps at the summed
  // rate, each event's kind drawn proportionally to the per-kind rates.
  Rng rng(seed_);
  Time t = config_.start;
  for (;;) {
    const double u = rng.next_double();
    t += -std::log1p(-u) / total;
    if (!(t < config_.horizon)) {
      break;
    }
    const double pick = rng.next_double() * total;
    ChurnEventKind kind = ChurnEventKind::kCrash;
    if (pick < config_.join_rate) {
      kind = ChurnEventKind::kJoin;
    } else if (pick < config_.join_rate + config_.leave_rate) {
      kind = ChurnEventKind::kLeave;
    }
    out.push_back(ChurnEvent{t, kind});
  }
  return out;
}

std::vector<ChurnEvent> ChurnProcess::from_trace(std::vector<ChurnEvent> trace) {
  for (const ChurnEvent& e : trace) {
    ARMADA_CHECK_MSG(e.at >= 0.0, "churn trace has a negative timestamp");
  }
  std::stable_sort(trace.begin(), trace.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) {
                     return a.at < b.at;
                   });
  return trace;
}

}  // namespace armada::sim
