#include "sim/churn.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace armada::sim {

ChurnProcess::ChurnProcess(Config config, std::uint64_t seed)
    : config_(config), seed_(seed) {
  ARMADA_CHECK(config_.join_rate >= 0.0);
  ARMADA_CHECK(config_.leave_rate >= 0.0);
  ARMADA_CHECK(config_.crash_rate >= 0.0);
  ARMADA_CHECK(config_.horizon >= config_.start);
}

std::vector<ChurnEvent> ChurnProcess::events() const {
  const double total =
      config_.join_rate + config_.leave_rate + config_.crash_rate;
  std::vector<ChurnEvent> out;
  if (total <= 0.0) {
    return out;
  }
  // Merged Poisson process: exponential inter-arrival gaps at the summed
  // rate, each event's kind drawn proportionally to the per-kind rates.
  Rng rng(seed_);
  Time t = config_.start;
  for (;;) {
    const double u = rng.next_double();
    t += -std::log1p(-u) / total;
    if (!(t < config_.horizon)) {
      break;
    }
    const double pick = rng.next_double() * total;
    ChurnEventKind kind = ChurnEventKind::kCrash;
    if (pick < config_.join_rate) {
      kind = ChurnEventKind::kJoin;
    } else if (pick < config_.join_rate + config_.leave_rate) {
      kind = ChurnEventKind::kLeave;
    }
    out.push_back(ChurnEvent{t, kind});
  }
  return out;
}

std::vector<ChurnEvent> ChurnProcess::lifetimes(const LifetimeConfig& config,
                                                std::uint64_t seed) {
  ARMADA_CHECK(config.shape > 0.0);
  ARMADA_CHECK(config.scale > 0.0);
  ARMADA_CHECK(config.arrival_rate >= 0.0);
  ARMADA_CHECK(config.crash_fraction >= 0.0 && config.crash_fraction <= 1.0);
  ARMADA_CHECK(config.horizon >= config.start);

  std::vector<ChurnEvent> out;
  if (config.arrival_rate <= 0.0) {
    return out;
  }
  Rng rng(seed);
  Time t = config.start;
  for (;;) {
    // Session starts form a Poisson stream, like the merged event process.
    const double u = rng.next_double();
    t += -std::log1p(-u) / config.arrival_rate;
    if (!(t < config.horizon)) {
      break;
    }
    out.push_back(ChurnEvent{t, ChurnEventKind::kJoin});
    // Inverse-transform sample of the session lifetime.
    const double v = rng.next_double();
    double lifetime = 0.0;
    switch (config.tail) {
      case LifetimeConfig::Tail::kPareto:
        lifetime = config.scale * std::pow(1.0 - v, -1.0 / config.shape);
        break;
      case LifetimeConfig::Tail::kWeibull:
        lifetime =
            config.scale * std::pow(-std::log1p(-v), 1.0 / config.shape);
        break;
    }
    const Time end = t + lifetime;
    // Keep the RNG stream independent of whether the departure lands inside
    // the horizon: the crash draw always happens.
    const bool crash = rng.next_double() < config.crash_fraction;
    if (end < config.horizon) {
      out.push_back(ChurnEvent{end, crash ? ChurnEventKind::kCrash
                                          : ChurnEventKind::kLeave});
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) {
                     return a.at < b.at;
                   });
  return out;
}

std::vector<ChurnEvent> ChurnProcess::from_trace(std::vector<ChurnEvent> trace) {
  for (const ChurnEvent& e : trace) {
    ARMADA_CHECK_MSG(e.at >= 0.0, "churn trace has a negative timestamp");
  }
  std::stable_sort(trace.begin(), trace.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) {
                     return a.at < b.at;
                   });
  return trace;
}

}  // namespace armada::sim
