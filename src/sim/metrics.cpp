#include "sim/metrics.h"

#include "util/check.h"

namespace armada::sim {

double QueryStats::mesg_ratio() const {
  ARMADA_CHECK(dest_peers > 0);
  return static_cast<double>(messages) / static_cast<double>(dest_peers);
}

double QueryStats::incre_ratio(double log_n) const {
  ARMADA_CHECK(dest_peers > 1);
  return (static_cast<double>(messages) - log_n) /
         static_cast<double>(dest_peers - 1);
}

void MetricSet::add(const QueryStats& q) {
  delay_.add(q.delay);
  latency_.add(q.latency);
  queue_delay_.add(q.queue_delay);
  bytes_.add(static_cast<double>(q.bytes_on_wire));
  coverage_.add(q.coverage);
  shed_.add(static_cast<double>(q.shed));
  hedges_.add(static_cast<double>(q.hedges));
  delay_pct_.add(q.delay);
  latency_pct_.add(q.latency);
  messages_.add(static_cast<double>(q.messages));
  dest_peers_.add(static_cast<double>(q.dest_peers));
  results_.add(static_cast<double>(q.results));
  replica_routes_.add(static_cast<double>(q.replica_routes));
  cache_hits_.add(static_cast<double>(q.cache_hits));
  if (q.dest_peers > 0) {
    mesg_ratio_.add(q.mesg_ratio());
  }
  if (q.dest_peers > 1) {
    incre_ratio_.add(q.incre_ratio(log_n_));
  }
}

}  // namespace armada::sim
