// Discrete-event simulation kernel.
//
// All overlays execute queries on this kernel; one overlay hop costs one
// time unit by default, so arrival time equals hop count and "query delay"
// (the paper's metric) is the latest arrival at any destination peer.
//
// The pending-event set is an indexed calendar (bucket) queue: events hash
// into time-windowed buckets, so scheduling and dispatch are O(1) amortized
// instead of the O(log n) of a binary heap — the difference between heap
// churn and straight-line dispatch on million-event runs. Event callbacks
// are stored in a small-buffer EventFn, so scheduling a typical closure
// performs no heap allocation at all.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace armada::sim {

using Time = double;

/// Move-only callable of signature void() with small-buffer storage:
/// closures up to kInlineSize bytes (every callback the kernel and the
/// transport schedule today) live inline in the event record; larger or
/// throwing-move callables fall back to a single heap cell.
class EventFn {
 public:
  EventFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, EventFn>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): function-like
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void operator()() { ops_->invoke(buf_); }
  explicit operator bool() const { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct the callable at dst from src, then destroy src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* dst, void* src) {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
      [](void* p) { static_cast<Fn*>(p)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**static_cast<Fn**>(p))(); },
      [](void* dst, void* src) {
        ::new (dst) Fn*(*static_cast<Fn**>(src));
      },
      [](void* p) { delete *static_cast<Fn**>(p); },
  };

  void move_from(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  static constexpr std::size_t kInlineSize = 56;

  alignas(std::max_align_t) std::byte buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

/// Minimal deterministic event loop. Events at equal times run in
/// scheduling (FIFO) order, which keeps runs reproducible for a fixed seed:
/// dispatch order is the strict total order (when, seq), exactly the order
/// the previous binary-heap kernel produced.
class Simulator {
 public:
  Simulator();

  void schedule_at(Time when, EventFn action);
  void schedule_after(Time delay, EventFn action);

  /// Process events until the queue is empty.
  void run();

  /// Process events with time <= horizon; later events stay queued.
  void run_until(Time horizon);

  Time now() const { return now_; }
  std::uint64_t events_processed() const { return processed_; }
  bool idle() const { return count_ == 0; }
  /// Process-unique instance id. Stateful layers keyed to one simulation
  /// (net::Queueing) use it to detect that a different simulator is now
  /// driving them and reset their per-run state.
  std::uint64_t id() const { return id_; }

 private:
  struct Event {
    Time when;
    std::uint64_t seq;
    EventFn fn;
  };

  std::uint64_t window_of(Time when) const {
    return static_cast<std::uint64_t>(when / width_);
  }
  void insert(Event e);
  /// Remove and return the earliest event by (when, seq). Requires
  /// count_ > 0. `peeked_when`, when already known via min_when(), skips
  /// the second scan.
  Event pop_min();
  /// Earliest pending timestamp; requires count_ > 0. Positions the cursor
  /// (window_) at that event's window as a side effect.
  Time min_when();
  void rebuild(std::size_t new_bucket_count);

  std::vector<std::vector<Event>> buckets_;
  std::size_t bucket_mask_ = 0;  ///< buckets_.size() - 1 (power of two)
  double width_ = 1.0;           ///< seconds of simulated time per bucket
  std::uint64_t window_ = 0;     ///< cursor: current time window index
  std::size_t count_ = 0;
  /// Bucket currently kept sorted descending by (when, seq) — the
  /// equal-time-batch fast path; SIZE_MAX when none.
  std::size_t sorted_bucket_ = static_cast<std::size_t>(-1);

  Time now_ = 0.0;
  std::uint64_t id_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace armada::sim
