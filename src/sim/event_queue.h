// Discrete-event simulation kernel.
//
// All overlays execute queries on this kernel; one overlay hop costs one
// time unit by default, so arrival time equals hop count and "query delay"
// (the paper's metric) is the latest arrival at any destination peer.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace armada::sim {

using Time = double;

/// Minimal deterministic event loop. Events at equal times run in
/// scheduling (FIFO) order, which keeps runs reproducible for a fixed seed.
class Simulator {
 public:
  Simulator();

  void schedule_at(Time when, std::function<void()> action);
  void schedule_after(Time delay, std::function<void()> action);

  /// Process events until the queue is empty.
  void run();

  /// Process events with time <= horizon; later events stay queued.
  void run_until(Time horizon);

  Time now() const { return now_; }
  std::uint64_t events_processed() const { return processed_; }
  bool idle() const { return queue_.empty(); }
  /// Process-unique instance id. Stateful layers keyed to one simulation
  /// (net::Queueing) use it to detect that a different simulator is now
  /// driving them and reset their per-run state.
  std::uint64_t id() const { return id_; }

 private:
  struct Item {
    Time when;
    std::uint64_t seq;
    std::function<void()> action;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Item, std::vector<Item>, Later> queue_;
  Time now_ = 0.0;
  std::uint64_t id_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace armada::sim
