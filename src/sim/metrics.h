// Query metrics matching the paper's evaluation (§4.3.3).
#pragma once

#include <cstdint>

#include "util/stats.h"

namespace armada::sim {

/// Per-query measurements.
struct QueryStats {
  /// Total overlay messages produced by the query.
  std::uint64_t messages = 0;
  /// Hops until the last destination peer received the query.
  double delay = 0.0;
  /// Simulated time until the last destination peer received the query,
  /// charged per link by the network's net::LatencyModel. Under the default
  /// ConstantHop model this equals `delay` exactly.
  double latency = 0.0;
  /// Time the query's messages spent in the queueing network beyond pure
  /// propagation (service waits, coalescing windows, link transmission),
  /// summed over messages. Exactly zero on the stateless transport path and
  /// under the zero-queue config.
  double queue_delay = 0.0;
  /// Payload bytes the query's transmissions put on links; zero while
  /// messages are unsized (no queueing config installed).
  std::uint64_t bytes_on_wire = 0;
  /// Fraction of the query's intended coverage actually served: 1.0 for a
  /// full answer, reached / (reached + shed) destinations when overload
  /// admission control degraded the query into a partial answer, 0.0 when
  /// the whole query was shed. Every overlay and bench reports partial
  /// answers through this one field.
  double coverage = 1.0;
  /// Branches / hops refused admission by overload control.
  std::uint64_t shed = 0;
  /// Hedged duplicate transmissions launched by flow control (each also
  /// counts in `messages`; the losing copy's continuation is cancelled).
  std::uint64_t hedges = 0;
  /// Destination peers that intersect the query and scan local data.
  std::uint64_t dest_peers = 0;
  /// Matching objects found.
  std::uint64_t results = 0;
  /// Search classes rerouted to a replica holder by the replica subsystem
  /// instead of fanning into the region (src/replica/).
  std::uint64_t replica_routes = 0;
  /// Search classes answered from a path result cache without touching the
  /// region's peers.
  std::uint64_t cache_hits = 0;

  /// Messages / Destpeers (paper metric MesgRatio).
  double mesg_ratio() const;
  /// (Messages - logN) / (Destpeers - 1) (paper metric IncreRatio);
  /// meaningful only when dest_peers > 1.
  double incre_ratio(double log_n) const;

  friend bool operator==(const QueryStats&, const QueryStats&) = default;
};

/// Aggregates QueryStats across a workload.
class MetricSet {
 public:
  explicit MetricSet(double log_n) : log_n_(log_n) {}

  void add(const QueryStats& q);

  const OnlineStats& delay() const { return delay_; }
  const OnlineStats& latency() const { return latency_; }
  const OnlineStats& queue_delay() const { return queue_delay_; }
  const OnlineStats& bytes_on_wire() const { return bytes_; }
  /// Per-query coverage fraction (mean 1.0 while nothing is shed) and the
  /// flow-control counters, aggregated alongside the paper metrics so every
  /// bench reports partial answers uniformly.
  const OnlineStats& coverage() const { return coverage_; }
  const OnlineStats& shed() const { return shed_; }
  const OnlineStats& hedges() const { return hedges_; }
  const OnlineStats& messages() const { return messages_; }
  const OnlineStats& dest_peers() const { return dest_peers_; }
  const OnlineStats& results() const { return results_; }
  /// Replica-subsystem counters (zero while nothing is replicated/cached).
  const OnlineStats& replica_routes() const { return replica_routes_; }
  const OnlineStats& cache_hits() const { return cache_hits_; }
  const OnlineStats& mesg_ratio() const { return mesg_ratio_; }
  const OnlineStats& incre_ratio() const { return incre_ratio_; }
  /// Tail behaviour of the two delay metrics (p50/p95/p99): with
  /// heterogeneous link latencies the mean hides the slow-link tail that
  /// bounds user-visible response time.
  const Percentiles& delay_percentiles() const { return delay_pct_; }
  const Percentiles& latency_percentiles() const { return latency_pct_; }
  double log_n() const { return log_n_; }

 private:
  double log_n_;
  OnlineStats delay_;
  OnlineStats latency_;
  OnlineStats queue_delay_;
  OnlineStats bytes_;
  OnlineStats coverage_;
  OnlineStats shed_;
  OnlineStats hedges_;
  Percentiles delay_pct_;
  Percentiles latency_pct_;
  OnlineStats messages_;
  OnlineStats dest_peers_;
  OnlineStats results_;
  OnlineStats replica_routes_;
  OnlineStats cache_hits_;
  OnlineStats mesg_ratio_;
  OnlineStats incre_ratio_;
};

}  // namespace armada::sim
