// Timed membership change for the discrete-event kernel.
//
// The paper evaluates static snapshots, but the delay bound is a claim about
// a network that is changing. This module supplies the two pieces every
// overlay shares when membership runs on simulated time:
//
//  * ChurnProcess — a deterministic schedule of join/leave/crash events,
//    either Poisson (merged arrival process, seeded exponential gaps) or
//    trace-driven (an explicit, validated event list).
//  * ChurnStats — the repair-side result currency, the membership analogue
//    of QueryStats: repair messages and latency, objects handed off /
//    dropped / in flight, and the outcomes of queries launched inside
//    stale-route windows.
//
// The per-overlay churn drivers (fissione::ChurnDriver, chord::ChurnDriver)
// consume events from here, execute the structural change, and price the
// repair protocol as transport-delivered messages on the Simulator.
#pragma once

#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "sim/metrics.h"
#include "util/rng.h"

namespace armada::sim {

enum class ChurnEventKind : std::uint8_t { kJoin, kLeave, kCrash };

/// One scheduled membership change. The affected peer is chosen by the
/// overlay's churn driver when the event executes (uniformly over the peers
/// alive *at that simulated instant*), so traces stay overlay-agnostic.
struct ChurnEvent {
  Time at = 0.0;
  ChurnEventKind kind = ChurnEventKind::kJoin;
};

/// Repair-side measurements, aggregated across the events a churn driver
/// executed and the queries its stale-aware wrappers observed. The exact
/// counterpart of QueryStats for the maintenance plane; defaulted equality
/// makes cross-build determinism checks one comparison.
struct ChurnStats {
  // --- membership events ----------------------------------------------------
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t crashes = 0;
  /// Leave/crash events skipped because the overlay was at its floor size.
  std::uint64_t skipped_events = 0;

  // --- repair traffic -------------------------------------------------------
  /// Transport-delivered repair messages: placement walks, neighbor-table
  /// updates, object handoffs, successor/finger repair.
  std::uint64_t repair_messages = 0;
  /// Sum over events of (last repair arrival - event time); includes crash
  /// detection timeouts.
  double repair_latency_total = 0.0;
  double repair_latency_max = 0.0;
  std::uint64_t objects_handed_off = 0;
  std::uint64_t objects_dropped = 0;
  /// Largest number of objects simultaneously on the wire.
  std::uint64_t objects_in_flight_peak = 0;

  // --- queries racing repair ------------------------------------------------
  std::uint64_t queries = 0;
  /// Queries that touched at least one open stale-route window.
  std::uint64_t stale_queries = 0;
  /// Per-hop detours: a forward attempt through a dead or not-yet-wired
  /// peer that had to be retried over a live link.
  std::uint64_t detours = 0;
  /// Queries aborted after exhausting the detour budget.
  std::uint64_t failed_queries = 0;
  /// Queries whose answer missed objects that were in flight.
  std::uint64_t incomplete_queries = 0;
  std::uint64_t objects_missed = 0;

  /// Record the stale-window outcome of one query — the single bump point
  /// shared by both overlay churn drivers and layered harnesses.
  void record_query(bool stale, std::uint64_t detour_count, bool failed,
                    std::uint64_t missed) {
    ++queries;
    if (stale) {
      ++stale_queries;
    }
    detours += detour_count;
    if (failed) {
      ++failed_queries;
    }
    if (missed > 0) {
      ++incomplete_queries;
      objects_missed += missed;
    }
  }

  std::uint64_t events() const { return joins + leaves + crashes; }
  double repair_latency_mean() const {
    const std::uint64_t n = events();
    return n == 0 ? 0.0 : repair_latency_total / static_cast<double>(n);
  }

  /// Interval accounting: subtract a snapshot taken earlier from the same
  /// driver to get the delta for a round/window. Every additive counter
  /// participates (add new fields HERE, not at call sites); the two maxima
  /// (repair_latency_max, objects_in_flight_peak) stay cumulative — a
  /// running maximum has no meaningful per-interval difference.
  ChurnStats& operator-=(const ChurnStats& snapshot) {
    joins -= snapshot.joins;
    leaves -= snapshot.leaves;
    crashes -= snapshot.crashes;
    skipped_events -= snapshot.skipped_events;
    repair_messages -= snapshot.repair_messages;
    repair_latency_total -= snapshot.repair_latency_total;
    objects_handed_off -= snapshot.objects_handed_off;
    objects_dropped -= snapshot.objects_dropped;
    queries -= snapshot.queries;
    stale_queries -= snapshot.stale_queries;
    detours -= snapshot.detours;
    failed_queries -= snapshot.failed_queries;
    incomplete_queries -= snapshot.incomplete_queries;
    objects_missed -= snapshot.objects_missed;
    return *this;
  }

  friend bool operator==(const ChurnStats&, const ChurnStats&) = default;
};

/// Per-node stale-route windows, keyed by the dense uint32 node ids every
/// overlay in this repo uses. A node is stale while its repair delivery is
/// still on the wire; windows only store their end instant (they open the
/// moment a churn driver touches them).
class StaleWindows {
 public:
  bool stale_at(std::uint32_t id, Time at) const {
    return id < until_.size() && until_[id] > at;
  }
  Time until(std::uint32_t id) const {
    return id < until_.size() ? until_[id] : 0.0;
  }
  /// Extend (never shrink) the window of `id` to `until`.
  void touch(std::uint32_t id, Time until) {
    if (id >= until_.size()) {
      until_.resize(id + 1, 0.0);
    }
    until_[id] = until_[id] > until ? until_[id] : until;
  }
  /// Drop any window (ids are recycled by some overlays).
  void clear(std::uint32_t id) {
    if (id < until_.size()) {
      until_[id] = 0.0;
    }
  }

 private:
  std::vector<Time> until_;
};

/// Outcome of replaying one routing walk against open stale windows.
struct WalkReplay {
  QueryStats stats;  ///< full walk cost including detour surcharges
  bool stale = false;
  std::uint32_t detours = 0;
  bool failed = false;  ///< detour budget exhausted; walk abandoned
};

/// Invoke a walk-replay link functor for one transmission departing at
/// `at`. Pure latency functors take (u, v); a queueing-transport functor
/// takes (u, v, at) so it can reserve capacity at the transmission's actual
/// departure instant. For pure functors the two-argument form called once
/// per transmission is indistinguishable from the historical
/// once-per-iteration call.
template <typename Node, typename LinkFn>
Time replay_link_cost(LinkFn&& link, Node u, Node v, Time at) {
  if constexpr (std::is_invocable_v<LinkFn&, Node, Node, Time>) {
    return link(u, v, at);
  } else {
    (void)at;
    return link(u, v);
  }
}

/// Replay a recorded walk (source..owner) at its own arrival times: a hop
/// leaving a node whose window is still open first chases a dead or
/// not-yet-wired pointer and detours — one extra message, one extra hop of
/// delay, one extra link charge — and more than `max_detours` detours
/// abandons the walk. Windows are checked per hop at that hop's departure
/// time, so repair completing mid-walk cleans up the later hops. This is
/// the one definition of the stale-route pricing rule; both overlay churn
/// drivers route through it, which is what keeps their detour economics
/// comparable in bench_churn.
template <typename Node, typename LinkFn>
WalkReplay replay_walk(const std::vector<Node>& path, Time start,
                       std::uint32_t max_detours, const StaleWindows& windows,
                       LinkFn&& link) {
  WalkReplay out;
  Time at = start;
  if (!path.empty()) {
    out.stale = windows.stale_at(static_cast<std::uint32_t>(path.front()), at);
  }
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const Node u = path[i];
    const Node v = path[i + 1];
    if (windows.stale_at(static_cast<std::uint32_t>(u), at)) {
      out.stale = true;
      ++out.detours;
      const Time detour_cost = replay_link_cost(link, u, v, at);
      ++out.stats.messages;
      out.stats.delay += 1.0;
      out.stats.latency += detour_cost;
      at += detour_cost;
      if (out.detours > max_detours) {
        out.failed = true;
        break;
      }
    }
    const Time cost = replay_link_cost(link, u, v, at);
    ++out.stats.messages;
    out.stats.delay += 1.0;
    out.stats.latency += cost;
    at += cost;
  }
  return out;
}

/// replay_walk through a queueing transport: every transmission reserves
/// queue capacity at its departure instant (stale detours included), so
/// replayed queries compete with concurrent traffic for the same node
/// servers and links. The walk's stats gain the accumulated queue_delay
/// and the bytes its messages put on the wire. TransportT is
/// net::Transport (templated to keep sim/ free of a net/ dependency);
/// SimT is the simulator shared with that transport's other traffic.
template <typename Node, typename TransportT, typename SimT>
WalkReplay replay_walk_queued(const std::vector<Node>& path, Time start,
                              std::uint32_t max_detours,
                              const StaleWindows& windows,
                              TransportT& transport, SimT& sim,
                              std::uint32_t bytes) {
  double queue_delay = 0.0;
  WalkReplay out = replay_walk(
      path, start, max_detours, windows, [&](Node u, Node v, Time at) {
        const Time cost = transport.deliver(sim, u, v, bytes, {}, at) - at;
        queue_delay += cost - transport.link(u, v);
        return cost;
      });
  out.stats.queue_delay = queue_delay;
  out.stats.bytes_on_wire =
      out.stats.messages * static_cast<std::uint64_t>(bytes);
  return out;
}

/// The one stale-route pricing rule both churn drivers use: replay the
/// walk through the queueing network when `use_queueing` (reserving
/// capacity per transmission, the config's default message size), or at
/// pure propagation cost otherwise.
template <typename Node, typename TransportT, typename SimT>
WalkReplay replay_walk_priced(const std::vector<Node>& path, Time start,
                              std::uint32_t max_detours,
                              const StaleWindows& windows,
                              TransportT& transport, SimT& sim,
                              bool use_queueing) {
  if (use_queueing) {
    return replay_walk_queued(path, start, max_detours, windows, transport,
                              sim, transport.default_message_bytes());
  }
  return replay_walk(path, start, max_detours, windows,
                     [&transport](Node u, Node v) {
                       return transport.link(u, v);
                     });
}

/// Deterministic membership schedules.
class ChurnProcess {
 public:
  struct Config {
    /// Expected events per unit of simulated time (independent Poisson
    /// processes, generated as one merged stream).
    double join_rate = 0.0;
    double leave_rate = 0.0;
    double crash_rate = 0.0;
    /// Events are generated in [start, horizon).
    Time start = 0.0;
    Time horizon = 0.0;
  };

  /// Heavy-tailed session lifetimes (Bamboo-style churn): node sessions
  /// begin as a Poisson arrival stream, each session joins at its start
  /// instant and departs one drawn lifetime later. Measured P2P session
  /// times are heavy-tailed — most sessions are short, a few last orders of
  /// magnitude longer — which Poisson event mixes cannot express; the
  /// lifetime is drawn from a Pareto or Weibull distribution by
  /// inverse-transform sampling.
  struct LifetimeConfig {
    enum class Tail : std::uint8_t { kPareto, kWeibull };
    Tail tail = Tail::kPareto;
    /// Pareto alpha / Weibull k. Pareto needs shape > 0 (alpha <= 1 has an
    /// infinite mean — allowed, the horizon truncates it); Weibull k < 1
    /// gives the heavy (stretched-exponential) tail.
    double shape = 1.5;
    /// Pareto x_m (minimum lifetime) / Weibull lambda.
    double scale = 4.0;
    /// Session starts per unit simulated time.
    double arrival_rate = 1.0;
    /// Fraction of session ends that are crashes instead of graceful
    /// leaves.
    double crash_fraction = 0.1;
    /// Sessions start in [start, horizon); a session whose lifetime runs
    /// past the horizon never emits its departure (it outlives the
    /// experiment).
    Time start = 0.0;
    Time horizon = 0.0;
  };

  ChurnProcess(Config config, std::uint64_t seed);

  /// The full schedule, sorted by time. Pure function of (config, seed):
  /// repeated calls and equal-seeded instances return identical traces.
  std::vector<ChurnEvent> events() const;

  /// Trace-driven schedule: sorts a hand-written or replayed event list by
  /// time (stable, so equal-time events keep their relative order) and
  /// validates that every timestamp is non-negative.
  static std::vector<ChurnEvent> from_trace(std::vector<ChurnEvent> trace);

  /// Heavy-tailed session-lifetime schedule, sorted by time: one kJoin per
  /// session start, one kLeave/kCrash at start + lifetime when that falls
  /// before the horizon. Pure function of (config, seed). Note ChurnEvents
  /// carry no node identity (drivers pick the affected peer at execution),
  /// so the schedule models the *event mix* heavy-tailed sessions induce:
  /// bursts of short-lived join/leave pairs over a slowly-departing core.
  static std::vector<ChurnEvent> lifetimes(const LifetimeConfig& config,
                                           std::uint64_t seed);

 private:
  Config config_;
  std::uint64_t seed_;
};

}  // namespace armada::sim
