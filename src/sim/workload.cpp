#include "sim/workload.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace armada::sim {

RangeWorkload::RangeWorkload(kautz::Interval domain, double query_size,
                             Rng rng)
    : domain_(domain), size_(query_size), rng_(std::move(rng)) {
  ARMADA_CHECK(domain_.lo < domain_.hi);
  ARMADA_CHECK(size_ >= 0.0);
  ARMADA_CHECK_MSG(size_ <= domain_.hi - domain_.lo,
                   "query size exceeds the domain");
}

RangeQuery RangeWorkload::next() {
  if (domain_.hi - size_ <= domain_.lo) {
    return RangeQuery{domain_.lo, domain_.hi};  // query spans the domain
  }
  const double lo = rng_.next_double(domain_.lo, domain_.hi - size_);
  return RangeQuery{lo, lo + size_};
}

BoxWorkload::BoxWorkload(kautz::Box domain, std::vector<double> sizes, Rng rng)
    : domain_(std::move(domain)), sizes_(std::move(sizes)), rng_(std::move(rng)) {
  ARMADA_CHECK(!domain_.empty());
  ARMADA_CHECK(domain_.size() == sizes_.size());
  for (std::size_t i = 0; i < domain_.size(); ++i) {
    ARMADA_CHECK(domain_[i].lo < domain_[i].hi);
    ARMADA_CHECK(sizes_[i] >= 0.0);
    ARMADA_CHECK(sizes_[i] <= domain_[i].hi - domain_[i].lo);
  }
}

kautz::Box BoxWorkload::next() {
  kautz::Box q(domain_.size());
  for (std::size_t i = 0; i < domain_.size(); ++i) {
    if (domain_[i].hi - sizes_[i] <= domain_[i].lo) {
      q[i] = domain_[i];  // the query spans this attribute's whole range
      continue;
    }
    const double lo =
        rng_.next_double(domain_[i].lo, domain_[i].hi - sizes_[i]);
    q[i] = kautz::Interval{lo, lo + sizes_[i]};
  }
  return q;
}

UniformPoints::UniformPoints(kautz::Box domain, Rng rng)
    : domain_(std::move(domain)), rng_(std::move(rng)) {
  ARMADA_CHECK(!domain_.empty());
  for (const auto& iv : domain_) {
    ARMADA_CHECK(iv.lo < iv.hi);
  }
}

std::vector<double> UniformPoints::next() {
  std::vector<double> p(domain_.size());
  for (std::size_t i = 0; i < domain_.size(); ++i) {
    p[i] = rng_.next_double(domain_[i].lo, domain_[i].hi);
  }
  return p;
}

ZipfValues::ZipfValues(kautz::Interval domain, std::size_t bins,
                       double exponent, Rng rng)
    : domain_(domain), rng_(std::move(rng)) {
  ARMADA_CHECK(domain_.lo < domain_.hi);
  ARMADA_CHECK(bins >= 1);
  ARMADA_CHECK(exponent >= 0.0);
  cdf_.reserve(bins);
  double acc = 0.0;
  for (std::size_t i = 0; i < bins; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_.push_back(acc);
  }
  for (double& c : cdf_) {
    c /= acc;
  }
}

double ZipfValues::next() {
  const double u = rng_.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const auto bin = static_cast<std::size_t>(it - cdf_.begin());
  const double width = (domain_.hi - domain_.lo) / static_cast<double>(cdf_.size());
  const double lo = domain_.lo + static_cast<double>(bin) * width;
  return lo + rng_.next_double() * width;
}

ClusteredValues::ClusteredValues(kautz::Interval domain,
                                 std::vector<Cluster> clusters, Rng rng)
    : domain_(domain), clusters_(std::move(clusters)), rng_(std::move(rng)) {
  ARMADA_CHECK(domain_.lo < domain_.hi);
  ARMADA_CHECK(!clusters_.empty());
  double acc = 0.0;
  for (const Cluster& c : clusters_) {
    ARMADA_CHECK(c.weight > 0.0 && c.stddev > 0.0);
    acc += c.weight;
    cdf_.push_back(acc);
  }
  for (double& c : cdf_) {
    c /= acc;
  }
}

double ClusteredValues::next() {
  const double u = rng_.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const Cluster& c = clusters_[static_cast<std::size_t>(it - cdf_.begin())];
  std::normal_distribution<double> noise(c.center, c.stddev);
  const double v = noise(rng_.engine());
  return std::clamp(v, domain_.lo, domain_.hi);
}

}  // namespace armada::sim
