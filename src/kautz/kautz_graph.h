// Static Kautz graph K(d,k) (paper §3, Figure 1).
//
// Used to validate FISSIONE's approximate-Kautz topology and the FRT model
// against the exact graph on small instances: optimal diameter (= k),
// uniform out-degree d, and shift-edge structure U = u1..uk -> u2..uk b.
#pragma once

#include <cstdint>
#include <vector>

#include "kautz/kautz_string.h"

namespace armada::kautz {

class KautzGraph {
 public:
  /// Requires space_size(base, k) to be 64-bit countable and small enough to
  /// materialize (validation-scale graphs).
  KautzGraph(std::uint8_t base, std::size_t k);

  std::uint8_t base() const { return base_; }
  std::size_t k() const { return k_; }
  std::uint64_t num_nodes() const { return num_nodes_; }

  KautzString label(std::uint64_t node) const;
  std::uint64_t node(const KautzString& label) const;

  std::vector<std::uint64_t> out_neighbors(std::uint64_t node) const;
  std::vector<std::uint64_t> in_neighbors(std::uint64_t node) const;

  /// Hop distances from `from` to every node (BFS over out-edges).
  std::vector<std::uint32_t> bfs_distances(std::uint64_t from) const;

  /// max over all ordered pairs; O(V * E), for validation-scale graphs.
  std::uint32_t diameter() const;

 private:
  std::uint8_t base_;
  std::size_t k_;
  std::uint64_t num_nodes_;
};

}  // namespace armada::kautz
