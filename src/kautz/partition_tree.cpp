#include "kautz/partition_tree.h"

#include "kautz/kautz_space.h"
#include "util/check.h"

namespace armada::kautz {

PartitionTree::PartitionTree(std::uint8_t base, std::size_t k,
                             Box attribute_ranges)
    : base_(base), k_(k), ranges_(std::move(attribute_ranges)) {
  ARMADA_CHECK(base_ >= 1);
  ARMADA_CHECK(k_ >= 1);
  ARMADA_CHECK(!ranges_.empty());
  for (const Interval& r : ranges_) {
    ARMADA_CHECK_MSG(r.lo < r.hi, "degenerate attribute range");
  }
}

PartitionTree PartitionTree::single(std::uint8_t base, std::size_t k,
                                    Interval range) {
  return PartitionTree(base, k, Box{range});
}

std::uint64_t PartitionTree::fanout(std::size_t depth) const {
  return depth == 0 ? base_ + 1u : base_;
}

Interval PartitionTree::child_interval(const Interval& parent,
                                       std::uint64_t idx,
                                       std::uint64_t f) const {
  const double width = parent.hi - parent.lo;
  Interval child;
  child.lo = idx == 0 ? parent.lo
                      : parent.lo + static_cast<double>(idx) * width /
                                        static_cast<double>(f);
  child.hi = idx == f - 1 ? parent.hi
                          : parent.lo + static_cast<double>(idx + 1) * width /
                                            static_cast<double>(f);
  return child;
}

KautzString PartitionTree::multiple_hash(const std::vector<double>& point) const {
  ARMADA_CHECK_MSG(point.size() == ranges_.size(),
                   "point has " << point.size() << " coordinates, tree has "
                                << ranges_.size() << " attributes");
  Box box = ranges_;
  for (std::size_t i = 0; i < point.size(); ++i) {
    ARMADA_CHECK_MSG(point[i] >= box[i].lo && point[i] <= box[i].hi,
                     "coordinate " << i << " = " << point[i]
                                   << " outside attribute range");
  }

  KautzString label{base_};
  for (std::size_t depth = 0; depth < k_; ++depth) {
    const std::size_t attr = depth % ranges_.size();
    const std::uint64_t f = fanout(depth);
    const double v = point[attr];
    // First child whose upper boundary exceeds v; the last child takes the
    // closed top of the parent interval.
    std::uint64_t idx = f - 1;
    for (std::uint64_t c = 0; c + 1 < f; ++c) {
      if (v < child_interval(box[attr], c, f).hi) {
        idx = c;
        break;
      }
    }
    box[attr] = child_interval(box[attr], idx, f);
    label.push_back(depth == 0 ? static_cast<std::uint8_t>(idx)
                               : index_symbol(idx, label.back()));
  }
  return label;
}

KautzString PartitionTree::single_hash(double value) const {
  ARMADA_CHECK(ranges_.size() == 1);
  return multiple_hash({value});
}

Box PartitionTree::box_for(const KautzString& label) const {
  ARMADA_CHECK(label.base() == base_);
  ARMADA_CHECK(label.length() <= k_);
  Box box = ranges_;
  for (std::size_t depth = 0; depth < label.length(); ++depth) {
    const std::size_t attr = depth % ranges_.size();
    const std::uint64_t f = fanout(depth);
    const std::uint64_t idx =
        depth == 0 ? label.digit(0)
                   : symbol_index(label.digit(depth), label.digit(depth - 1));
    box[attr] = child_interval(box[attr], idx, f);
  }
  return box;
}

Interval PartitionTree::interval_for(const KautzString& label) const {
  ARMADA_CHECK(ranges_.size() == 1);
  return box_for(label)[0];
}

bool interval_intersects(const Interval& node, const Interval& query,
                         double range_top) {
  if (query.hi < node.lo) {
    return false;
  }
  if (node.hi == range_top) {
    return query.lo <= node.hi;
  }
  return query.lo < node.hi;
}

bool PartitionTree::box_intersects(const KautzString& label,
                                   const Box& query) const {
  ARMADA_CHECK(query.size() == ranges_.size());
  const Box box = box_for(label);
  for (std::size_t i = 0; i < box.size(); ++i) {
    ARMADA_CHECK_MSG(query[i].lo <= query[i].hi, "inverted query interval");
    if (!interval_intersects(box[i], query[i], ranges_[i].hi)) {
      return false;
    }
  }
  return true;
}

KautzRegion PartitionTree::region_for(double a, double b) const {
  ARMADA_CHECK(ranges_.size() == 1);
  ARMADA_CHECK_MSG(a <= b, "inverted range query");
  return KautzRegion(single_hash(a), single_hash(b));
}

KautzRegion PartitionTree::bounding_region(const Box& query) const {
  ARMADA_CHECK(query.size() == ranges_.size());
  std::vector<double> lo_corner(query.size());
  std::vector<double> hi_corner(query.size());
  for (std::size_t i = 0; i < query.size(); ++i) {
    ARMADA_CHECK_MSG(query[i].lo <= query[i].hi, "inverted query interval");
    lo_corner[i] = query[i].lo;
    hi_corner[i] = query[i].hi;
  }
  return KautzRegion(multiple_hash(lo_corner), multiple_hash(hi_corner));
}

}  // namespace armada::kautz
