// Combinatorics of KautzSpace(d, k): counting, ranking, extensions.
//
// Rank/unrank use a mixed-radix encoding: the first symbol has d+1 choices,
// every later symbol has d choices (any symbol except its predecessor),
// indexed in increasing symbol order. This makes lexicographic rank a plain
// positional number, which the tests and region-size computations rely on.
#pragma once

#include <cstdint>
#include <vector>

#include "kautz/kautz_string.h"
#include "util/rng.h"

namespace armada::kautz {

/// |KautzSpace(base, len)| = (base+1) * base^(len-1); 1 for len == 0.
/// Requires the result to fit in 64 bits (len <= 63 for base 2).
std::uint64_t space_size(std::uint8_t base, std::size_t len);

/// Index of `symbol` among the allowed successors of `prev` (all symbols
/// except prev, in increasing order), and its inverse. These define the
/// child ordering of the partition tree and the mixed-radix rank encoding.
std::uint64_t symbol_index(std::uint8_t symbol, std::uint8_t prev);
std::uint8_t index_symbol(std::uint64_t index, std::uint8_t prev);

/// Number of length-k Kautz strings having `prefix` as a prefix.
std::uint64_t extension_count(const KautzString& prefix, std::size_t k);

/// Lexicographic rank of `s` within KautzSpace(base, s.length()).
std::uint64_t rank(const KautzString& s);

/// Inverse of rank(). Requires r < space_size(base, len).
KautzString unrank(std::uint8_t base, std::size_t len, std::uint64_t r);

/// Lexicographically smallest / largest length-k string with given prefix.
/// The smallest appends the least allowed symbol at each step, the largest
/// the greatest. Requires prefix.length() <= k.
KautzString min_extension(const KautzString& prefix, std::size_t k);
KautzString max_extension(const KautzString& prefix, std::size_t k);

/// Next / previous string of the same length in lexicographic order.
/// Throws CheckError at the ends of the space.
KautzString successor(const KautzString& s);
KautzString predecessor(const KautzString& s);

/// True iff `s` is the first / last string of its length.
bool is_space_min(const KautzString& s);
bool is_space_max(const KautzString& s);

/// Uniform sample from KautzSpace(base, len); works for any len (digit-wise,
/// no 64-bit restriction).
KautzString random_string(Rng& rng, std::uint8_t base, std::size_t len);

/// All strings of KautzSpace(base, len) in lexicographic order (tests only;
/// intended for small len).
std::vector<KautzString> enumerate(std::uint8_t base, std::size_t len);

}  // namespace armada::kautz
