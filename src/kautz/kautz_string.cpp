#include "kautz/kautz_string.h"

#include <algorithm>
#include <ostream>
#include <string_view>

#include "util/check.h"
#include "util/hash.h"

namespace armada::kautz {

KautzString::KautzString(std::uint8_t base) : base_(base) {
  ARMADA_CHECK(base_ >= 1);
}

KautzString::KautzString(std::uint8_t base, std::vector<std::uint8_t> digits)
    : base_(base), digits_(std::move(digits)) {
  ARMADA_CHECK(base_ >= 1);
  check_valid();
}

KautzString KautzString::parse(std::string_view text, std::uint8_t base) {
  std::vector<std::uint8_t> digits;
  digits.reserve(text.size());
  for (char c : text) {
    ARMADA_CHECK_MSG(c >= '0' && c <= '9', "bad digit '" << c << "'");
    digits.push_back(static_cast<std::uint8_t>(c - '0'));
  }
  return KautzString(base, std::move(digits));
}

std::uint8_t KautzString::digit(std::size_t i) const {
  ARMADA_CHECK_MSG(i < digits_.size(), "index " << i << " out of range");
  return digits_[i];
}

std::uint8_t KautzString::front() const {
  ARMADA_CHECK(!digits_.empty());
  return digits_.front();
}

std::uint8_t KautzString::back() const {
  ARMADA_CHECK(!digits_.empty());
  return digits_.back();
}

void KautzString::push_back(std::uint8_t symbol) {
  ARMADA_CHECK_MSG(can_append(symbol),
                   "cannot append " << int(symbol) << " to " << to_string());
  digits_.push_back(symbol);
}

void KautzString::pop_back() {
  ARMADA_CHECK(!digits_.empty());
  digits_.pop_back();
}

KautzString KautzString::prefix(std::size_t len) const {
  ARMADA_CHECK(len <= digits_.size());
  return KautzString(
      base_, std::vector<std::uint8_t>(digits_.begin(),
                                       digits_.begin() + static_cast<long>(len)));
}

KautzString KautzString::suffix(std::size_t len) const {
  ARMADA_CHECK(len <= digits_.size());
  return KautzString(
      base_,
      std::vector<std::uint8_t>(digits_.end() - static_cast<long>(len),
                                digits_.end()));
}

KautzString KautzString::drop_front() const {
  ARMADA_CHECK(!digits_.empty());
  return suffix(digits_.size() - 1);
}

KautzString KautzString::concat(const KautzString& tail) const {
  ARMADA_CHECK(base_ == tail.base_);
  std::vector<std::uint8_t> digits = digits_;
  digits.insert(digits.end(), tail.digits_.begin(), tail.digits_.end());
  return KautzString(base_, std::move(digits));
}

bool KautzString::can_append(std::uint8_t symbol) const {
  if (symbol > base_) {
    return false;
  }
  return digits_.empty() || digits_.back() != symbol;
}

bool KautzString::is_prefix_of(const KautzString& other) const {
  ARMADA_CHECK(base_ == other.base_);
  if (digits_.size() > other.digits_.size()) {
    return false;
  }
  return std::equal(digits_.begin(), digits_.end(), other.digits_.begin());
}

bool KautzString::is_suffix_of(const KautzString& other) const {
  ARMADA_CHECK(base_ == other.base_);
  if (digits_.size() > other.digits_.size()) {
    return false;
  }
  return std::equal(digits_.rbegin(), digits_.rend(), other.digits_.rbegin());
}

std::size_t KautzString::longest_suffix_prefix(const KautzString& other) const {
  ARMADA_CHECK(base_ == other.base_);
  const std::size_t max_len = std::min(digits_.size(), other.digits_.size());
  for (std::size_t len = max_len; len > 0; --len) {
    if (std::equal(digits_.end() - static_cast<long>(len), digits_.end(),
                   other.digits_.begin())) {
      return len;
    }
  }
  return 0;
}

std::strong_ordering KautzString::operator<=>(const KautzString& other) const {
  ARMADA_CHECK(base_ == other.base_);
  return std::lexicographical_compare_three_way(
      digits_.begin(), digits_.end(), other.digits_.begin(),
      other.digits_.end());
}

std::string KautzString::to_string() const {
  if (digits_.empty()) {
    return "<empty>";
  }
  std::string out;
  out.reserve(digits_.size());
  for (std::uint8_t d : digits_) {
    out.push_back(static_cast<char>('0' + d));
  }
  return out;
}

void KautzString::check_valid() const {
  for (std::size_t i = 0; i < digits_.size(); ++i) {
    ARMADA_CHECK_MSG(digits_[i] <= base_,
                     "digit " << int(digits_[i]) << " exceeds base "
                              << int(base_));
    if (i > 0) {
      ARMADA_CHECK_MSG(digits_[i] != digits_[i - 1],
                       "repeated symbol at position " << i);
    }
  }
}

std::size_t KautzStringHash::operator()(const KautzString& s) const {
  // FNV-1a over the digit bytes (bit-identical to the previous inline
  // loop), with the base mixed into the top byte.
  const auto& d = s.digits();
  const std::size_t h = fnv1a64(
      std::string_view(reinterpret_cast<const char*>(d.data()), d.size()));
  return h ^ (static_cast<std::size_t>(s.base()) << 56);
}

std::ostream& operator<<(std::ostream& os, const KautzString& s) {
  return os << s.to_string();
}

}  // namespace armada::kautz
