// Cold and bulk KautzString operations; the slicing/alignment/ordering hot
// path is inline in kautz_string.h.
#include "kautz/kautz_string.h"

#include <ostream>
#include <string_view>

namespace armada::kautz {

KautzString::KautzString(std::uint8_t base,
                         const std::vector<std::uint8_t>& digits)
    : KautzString(Raw{}, base, digits.size()) {
  // Validate before packing: a digit wider than bits() would be truncated
  // silently and then pass the packed-representation check. Two passes — the
  // validation loop vectorizes (byte compares against base and against the
  // shifted-by-one sequence), the packing loop stores one word per 32/16
  // digits.
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    ARMADA_CHECK_MSG(digits[i] <= base_, "digit " << int(digits[i])
                                                  << " exceeds base "
                                                  << int(base_));
    if (i > 0) {
      ARMADA_CHECK_MSG(digits[i] != digits[i - 1],
                       "repeated symbol at position " << i);
    }
  }
  std::uint64_t* ws = words();
  std::uint64_t cur = 0;
  std::size_t w = 0;
  std::size_t off = 0;
  for (std::size_t i = 0; i < n; ++i) {
    cur |= static_cast<std::uint64_t>(digits[i]) << off;
    off += bits_;
    if (off == 64) {
      ws[w++] = cur;
      cur = 0;
      off = 0;
    }
  }
  if (off != 0) {
    ws[w] = cur;
  }
}

KautzString KautzString::parse(std::string_view text, std::uint8_t base) {
  std::vector<std::uint8_t> digits;
  digits.reserve(text.size());
  for (char c : text) {
    ARMADA_CHECK_MSG(c >= '0' && c <= '9', "bad digit '" << c << "'");
    digits.push_back(static_cast<std::uint8_t>(c - '0'));
  }
  return KautzString(base, digits);
}

void KautzString::set_digit(std::size_t i, std::uint8_t symbol) {
  const std::size_t w = (i << lg()) >> 6u;
  const std::size_t r = (i << lg()) & 63u;
  std::uint64_t* ws = words();
  ws[w] = (ws[w] & ~(low_mask(bits_) << r)) |
          (static_cast<std::uint64_t>(symbol) << r);
}

std::vector<std::uint8_t> KautzString::digits() const {
  std::vector<std::uint8_t> out(len_);
  for (std::size_t i = 0; i < len_; ++i) {
    out[i] = static_cast<std::uint8_t>(chunk(i, 1));
  }
  return out;
}

void KautzString::push_back(std::uint8_t symbol) {
  ARMADA_CHECK_MSG(can_append(symbol),
                   "cannot append " << int(symbol) << " to " << to_string());
  if (spill_.empty() && len_ + 1 > inline_capacity()) {
    spill_.assign(inline_.begin(), inline_.end());
  }
  if (!spill_.empty() && (len_ / dpw()) + 1 > spill_.size()) {
    spill_.push_back(0);
  }
  ++len_;
  set_digit(len_ - 1, symbol);
}

void KautzString::pop_back() {
  ARMADA_CHECK(len_ > 0);
  set_digit(len_ - 1, 0);  // keep the zero-tail invariant
  --len_;
}

std::string KautzString::to_string() const {
  if (len_ == 0) {
    return "<empty>";
  }
  std::string out;
  out.reserve(len_);
  for (std::size_t i = 0; i < len_; ++i) {
    out.push_back(static_cast<char>('0' + chunk(i, 1)));
  }
  return out;
}

void KautzString::check_valid() const {
  for (std::size_t i = 0; i < len_; ++i) {
    const auto d = static_cast<std::uint8_t>(chunk(i, 1));
    ARMADA_CHECK_MSG(d <= base_,
                     "digit " << int(d) << " exceeds base " << int(base_));
    if (i > 0) {
      ARMADA_CHECK_MSG(d != chunk(i - 1, 1),
                       "repeated symbol at position " << i);
    }
  }
}

std::size_t KautzStringHash::operator()(const KautzString& s) const {
  // FNV-1a over the digit bytes (bit-identical to hashing the old
  // digit-vector storage), with the base mixed into the top byte.
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < s.length(); ++i) {
    h ^= s.digit(i);
    h *= 1099511628211ull;
  }
  return h ^ (static_cast<std::size_t>(s.base()) << 56);
}

std::ostream& operator<<(std::ostream& os, const KautzString& s) {
  return os << s.to_string();
}

}  // namespace armada::kautz
