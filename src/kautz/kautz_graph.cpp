#include "kautz/kautz_graph.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "kautz/kautz_space.h"
#include "util/check.h"

namespace armada::kautz {

namespace {
constexpr std::uint32_t kUnreached = std::numeric_limits<std::uint32_t>::max();
}  // namespace

KautzGraph::KautzGraph(std::uint8_t base, std::size_t k)
    : base_(base), k_(k), num_nodes_(space_size(base, k)) {
  ARMADA_CHECK(k_ >= 1);
}

KautzString KautzGraph::label(std::uint64_t node) const {
  return unrank(base_, k_, node);
}

std::uint64_t KautzGraph::node(const KautzString& s) const {
  ARMADA_CHECK(s.base() == base_ && s.length() == k_);
  return rank(s);
}

std::vector<std::uint64_t> KautzGraph::out_neighbors(std::uint64_t node) const {
  const KautzString s = label(node);
  const KautzString shifted = s.drop_front();
  std::vector<std::uint64_t> out;
  out.reserve(base_);
  for (std::uint8_t b = 0; b <= base_; ++b) {
    if (shifted.can_append(b)) {
      KautzString t = shifted;
      t.push_back(b);
      out.push_back(rank(t));
    }
  }
  return out;
}

std::vector<std::uint64_t> KautzGraph::in_neighbors(std::uint64_t node) const {
  const KautzString s = label(node);
  const KautzString head = s.prefix(k_ - 1);
  std::vector<std::uint64_t> in;
  in.reserve(base_);
  for (std::uint8_t a = 0; a <= base_; ++a) {
    if (a == s.front()) {
      continue;
    }
    KautzString t{base_};
    t.push_back(a);
    if (head.empty() || t.back() != head.front()) {
      in.push_back(rank(t.concat(head)));
    }
  }
  return in;
}

std::vector<std::uint32_t> KautzGraph::bfs_distances(std::uint64_t from) const {
  std::vector<std::uint32_t> dist(num_nodes_, kUnreached);
  std::deque<std::uint64_t> queue;
  dist[from] = 0;
  queue.push_back(from);
  while (!queue.empty()) {
    const std::uint64_t u = queue.front();
    queue.pop_front();
    for (std::uint64_t v : out_neighbors(u)) {
      if (dist[v] == kUnreached) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::uint32_t KautzGraph::diameter() const {
  std::uint32_t best = 0;
  for (std::uint64_t u = 0; u < num_nodes_; ++u) {
    const auto dist = bfs_distances(u);
    for (std::uint32_t d : dist) {
      ARMADA_CHECK_MSG(d != kUnreached, "Kautz graph must be strongly connected");
      best = std::max(best, d);
    }
  }
  return best;
}

}  // namespace armada::kautz
