#include "kautz/kautz_region.h"

#include "kautz/kautz_space.h"
#include "util/check.h"

namespace armada::kautz {

KautzRegion::KautzRegion(KautzString lo, KautzString hi)
    : lo_(std::move(lo)), hi_(std::move(hi)) {
  ARMADA_CHECK(lo_.base() == hi_.base());
  ARMADA_CHECK(lo_.length() == hi_.length());
  ARMADA_CHECK(!lo_.empty());
  ARMADA_CHECK_MSG(lo_ <= hi_, "inverted region <" << lo_.to_string() << ", "
                                                   << hi_.to_string() << ">");
}

bool KautzRegion::contains(const KautzString& s) const {
  ARMADA_CHECK(s.length() == length());
  return lo_ <= s && s <= hi_;
}

std::uint64_t KautzRegion::size() const { return rank(hi_) - rank(lo_) + 1; }

KautzString KautzRegion::common_prefix() const {
  std::size_t n = 0;
  while (n < length() && lo_.digit(n) == hi_.digit(n)) {
    ++n;
  }
  return lo_.prefix(n);
}

bool KautzRegion::intersects_prefix(const KautzString& prefix) const {
  ARMADA_CHECK(prefix.base() == base());
  ARMADA_CHECK(prefix.length() <= length());
  if (prefix.empty()) {
    return true;
  }
  return min_extension(prefix, length()) <= hi_ &&
         max_extension(prefix, length()) >= lo_;
}

std::vector<KautzRegion> KautzRegion::split_common_prefix() const {
  if (lo_.digit(0) == hi_.digit(0)) {
    return {*this};
  }
  std::vector<KautzRegion> parts;
  // Head: strings sharing lo's first symbol.
  parts.emplace_back(lo_, max_extension(lo_.prefix(1), length()));
  // Middle: whole first-symbol blocks strictly between lo's and hi's.
  for (std::uint8_t c = lo_.digit(0) + 1; c < hi_.digit(0); ++c) {
    KautzString head{base()};
    head.push_back(c);
    parts.emplace_back(min_extension(head, length()),
                       max_extension(head, length()));
  }
  // Tail: strings sharing hi's first symbol.
  parts.emplace_back(min_extension(hi_.prefix(1), length()), hi_);
  return parts;
}

KautzRegion KautzRegion::clamp_to_prefix(const KautzString& prefix) const {
  ARMADA_CHECK_MSG(intersects_prefix(prefix),
                   "prefix " << prefix.to_string() << " misses region "
                             << to_string());
  const KautzString lo_ext = min_extension(prefix, length());
  const KautzString hi_ext = max_extension(prefix, length());
  return KautzRegion(lo_ext > lo_ ? lo_ext : lo_, hi_ext < hi_ ? hi_ext : hi_);
}

std::string KautzRegion::to_string() const {
  return "<" + lo_.to_string() + ", " + hi_.to_string() + ">";
}

}  // namespace armada::kautz
