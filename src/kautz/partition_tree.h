// The partition tree P(d,k) and the paper's naming algorithms.
//
// P(d,k) mirrors the prefix structure of KautzSpace(d,k): the root has d+1
// children, every other internal node has d children, and edge labels differ
// from the in-edge label of the parent, increasing left to right (paper §4.1,
// Figure 3). Node labels are exactly the Kautz strings of length <= k; leaf
// labels are KautzSpace(d,k) in lexicographic order.
//
// Single_hash (m = 1) partitions the attribute interval [L, H] across the
// tree and maps a value to the leaf whose subinterval contains it; it is
// interval-preserving (Definition 2). Multiple_hash partitions an
// m-dimensional box round-robin across attributes (level j splits attribute
// j mod m) and is partial-order preserving (Definition 4).
#pragma once

#include <vector>

#include "kautz/kautz_region.h"
#include "kautz/kautz_string.h"

namespace armada::kautz {

/// Real interval. Query intervals are closed [lo, hi]; partition-tree node
/// intervals are half-open [lo, hi) except at the top of the attribute range
/// (so every value maps to exactly one leaf).
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  bool operator==(const Interval&) const = default;
};

using Box = std::vector<Interval>;

class PartitionTree {
 public:
  /// Multi-attribute tree over the given per-attribute value ranges.
  /// Requires base >= 1, k >= 1, at least one attribute, and lo < hi per
  /// attribute.
  PartitionTree(std::uint8_t base, std::size_t k, Box attribute_ranges);

  /// Single-attribute convenience (the paper's P(2,k) over [L, H]).
  static PartitionTree single(std::uint8_t base, std::size_t k,
                              Interval range);

  std::uint8_t base() const { return base_; }
  std::size_t k() const { return k_; }
  std::size_t num_attributes() const { return ranges_.size(); }
  const Box& attribute_ranges() const { return ranges_; }

  /// Multiple_hash: ObjectID (leaf label) of a point; every coordinate must
  /// lie within its attribute range.
  KautzString multiple_hash(const std::vector<double>& point) const;

  /// Single_hash(c, L, H, k); requires a single-attribute tree.
  KautzString single_hash(double value) const;

  /// The subspace represented by a partition-tree node (label length <= k).
  Box box_for(const KautzString& label) const;

  /// Single-attribute subinterval of a node.
  Interval interval_for(const KautzString& label) const;

  /// Does node `label`'s subspace intersect the closed query box?
  bool box_intersects(const KautzString& label, const Box& query) const;

  /// Kautz region of a single-attribute range query [a, b] (paper §4.2):
  /// <Single_hash(a), Single_hash(b)>.
  KautzRegion region_for(double a, double b) const;

  /// Bounding Kautz region of a multi-attribute query (paper §5):
  /// <Multiple_hash(lower corner), Multiple_hash(upper corner)>. The true
  /// destination set may be a proper subset; MIRA prunes inside it.
  KautzRegion bounding_region(const Box& query) const;

 private:
  // Number of children of a node at depth `depth` (root: base+1, else base).
  std::uint64_t fanout(std::size_t depth) const;

  // Child subinterval: index `idx` of `f` children of [lo, hi).
  Interval child_interval(const Interval& parent, std::uint64_t idx,
                          std::uint64_t f) const;

  std::uint8_t base_;
  std::size_t k_;
  Box ranges_;
};

/// True iff closed query interval [q.lo, q.hi] intersects node interval
/// [node.lo, node.hi), where the node interval is closed above iff node.hi
/// equals `range_top`.
bool interval_intersects(const Interval& node, const Interval& query,
                         double range_top);

}  // namespace armada::kautz
