#include "kautz/kautz_space.h"

#include <limits>

#include "util/check.h"

namespace armada::kautz {

namespace {

// base^exp with overflow checking.
std::uint64_t checked_pow(std::uint64_t base, std::size_t exp) {
  std::uint64_t result = 1;
  for (std::size_t i = 0; i < exp; ++i) {
    ARMADA_CHECK_MSG(result <= std::numeric_limits<std::uint64_t>::max() / base,
                     "Kautz space size overflows 64 bits");
    result *= base;
  }
  return result;
}

}  // namespace

std::uint64_t symbol_index(std::uint8_t symbol, std::uint8_t prev) {
  return symbol < prev ? symbol : static_cast<std::uint64_t>(symbol) - 1;
}

std::uint8_t index_symbol(std::uint64_t index, std::uint8_t prev) {
  return index < prev ? static_cast<std::uint8_t>(index)
                      : static_cast<std::uint8_t>(index + 1);
}

std::uint64_t space_size(std::uint8_t base, std::size_t len) {
  if (len == 0) {
    return 1;
  }
  const std::uint64_t tail = checked_pow(base, len - 1);
  ARMADA_CHECK(tail <= std::numeric_limits<std::uint64_t>::max() / (base + 1u));
  return (base + 1u) * tail;
}

std::uint64_t extension_count(const KautzString& prefix, std::size_t k) {
  ARMADA_CHECK(prefix.length() <= k);
  if (prefix.empty()) {
    return space_size(prefix.base(), k);
  }
  return checked_pow(prefix.base(), k - prefix.length());
}

std::uint64_t rank(const KautzString& s) {
  ARMADA_CHECK(!s.empty());
  const std::uint8_t base = s.base();
  std::uint64_t r = s.digit(0) * checked_pow(base, s.length() - 1);
  for (std::size_t i = 1; i < s.length(); ++i) {
    r += symbol_index(s.digit(i), s.digit(i - 1)) *
         checked_pow(base, s.length() - 1 - i);
  }
  return r;
}

KautzString unrank(std::uint8_t base, std::size_t len, std::uint64_t r) {
  ARMADA_CHECK(len >= 1);
  ARMADA_CHECK_MSG(r < space_size(base, len), "rank " << r << " out of range");
  std::vector<std::uint8_t> digits(len);
  std::uint64_t weight = checked_pow(base, len - 1);
  digits[0] = static_cast<std::uint8_t>(r / weight);
  r %= weight;
  for (std::size_t i = 1; i < len; ++i) {
    weight /= base;
    digits[i] = index_symbol(r / weight, digits[i - 1]);
    r %= weight;
  }
  return KautzString(base, std::move(digits));
}

KautzString min_extension(const KautzString& prefix, std::size_t k) {
  ARMADA_CHECK(prefix.length() <= k);
  KautzString out = prefix;
  while (out.length() < k) {
    // Least allowed symbol: 0 unless the last symbol is 0, then 1.
    out.push_back(out.empty() || out.back() != 0 ? 0 : 1);
  }
  return out;
}

KautzString max_extension(const KautzString& prefix, std::size_t k) {
  ARMADA_CHECK(prefix.length() <= k);
  const std::uint8_t top = prefix.base();
  KautzString out = prefix;
  while (out.length() < k) {
    out.push_back(out.empty() || out.back() != top
                      ? top
                      : static_cast<std::uint8_t>(top - 1));
  }
  return out;
}

bool is_space_min(const KautzString& s) {
  return s == min_extension(KautzString(s.base()), s.length());
}

bool is_space_max(const KautzString& s) {
  return s == max_extension(KautzString(s.base()), s.length());
}

KautzString successor(const KautzString& s) {
  ARMADA_CHECK_MSG(!is_space_max(s), "no successor of " << s.to_string());
  // Find the rightmost position whose symbol can be bumped to a larger
  // allowed symbol, bump it minimally, then fill with the minimal extension.
  for (std::size_t pos = s.length(); pos > 0; --pos) {
    const std::size_t i = pos - 1;
    const std::uint8_t cur = s.digit(i);
    for (std::uint8_t next = cur + 1; next <= s.base(); ++next) {
      if (i > 0 && next == s.digit(i - 1)) {
        continue;
      }
      KautzString head = s.prefix(i);
      head.push_back(next);
      return min_extension(head, s.length());
    }
  }
  ARMADA_CHECK_MSG(false, "unreachable: " << s.to_string());
  return s;  // not reached
}

KautzString predecessor(const KautzString& s) {
  ARMADA_CHECK_MSG(!is_space_min(s), "no predecessor of " << s.to_string());
  for (std::size_t pos = s.length(); pos > 0; --pos) {
    const std::size_t i = pos - 1;
    const std::uint8_t cur = s.digit(i);
    for (int prev = static_cast<int>(cur) - 1; prev >= 0; --prev) {
      if (i > 0 && prev == s.digit(i - 1)) {
        continue;
      }
      KautzString head = s.prefix(i);
      head.push_back(static_cast<std::uint8_t>(prev));
      return max_extension(head, s.length());
    }
  }
  ARMADA_CHECK_MSG(false, "unreachable: " << s.to_string());
  return s;  // not reached
}

KautzString random_string(Rng& rng, std::uint8_t base, std::size_t len) {
  KautzString out{base};
  for (std::size_t i = 0; i < len; ++i) {
    if (i == 0) {
      out.push_back(static_cast<std::uint8_t>(rng.next_u64(base + 1u)));
    } else {
      const auto idx = rng.next_u64(base);
      out.push_back(index_symbol(idx, out.back()));
    }
  }
  return out;
}

std::vector<KautzString> enumerate(std::uint8_t base, std::size_t len) {
  std::vector<KautzString> out;
  const std::uint64_t n = space_size(base, len);
  out.reserve(n);
  if (len == 0) {
    out.emplace_back(base);
    return out;
  }
  for (std::uint64_t r = 0; r < n; ++r) {
    out.push_back(unrank(base, len, r));
  }
  return out;
}

}  // namespace armada::kautz
