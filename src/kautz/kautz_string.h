// Kautz strings: the identifier alphabet of FISSIONE and Armada.
//
// A Kautz string of base d is a sequence over the alphabet {0, 1, ..., d}
// (d+1 symbols) in which adjacent symbols differ (paper §3). KautzSpace(d,k)
// is the set of all such strings of length k; FISSIONE PeerIDs are
// variable-length base-2 Kautz strings and ObjectIDs are fixed-length ones.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace armada::kautz {

/// Immutable-by-convention Kautz string with checked invariants: every digit
/// is <= base() and adjacent digits differ. The empty string is valid (it is
/// the root label of the partition tree and a neutral prefix).
class KautzString {
 public:
  /// Empty string of the given base. Base must be >= 1 (alphabet size 2+).
  explicit KautzString(std::uint8_t base = 2);

  /// Build from digits; throws CheckError if not a valid Kautz string.
  KautzString(std::uint8_t base, std::vector<std::uint8_t> digits);

  /// Parse a textual form such as "0120" (digits '0'..'9'). Throws on
  /// malformed input or Kautz-invariant violation.
  static KautzString parse(std::string_view text, std::uint8_t base = 2);

  std::uint8_t base() const { return base_; }
  std::size_t length() const { return digits_.size(); }
  bool empty() const { return digits_.empty(); }
  std::uint8_t digit(std::size_t i) const;
  std::uint8_t front() const;
  std::uint8_t back() const;
  const std::vector<std::uint8_t>& digits() const { return digits_; }

  /// Append one symbol; it must differ from back() and be <= base().
  void push_back(std::uint8_t symbol);
  void pop_back();

  /// Leading/trailing slices (always valid Kautz strings themselves).
  KautzString prefix(std::size_t len) const;
  KautzString suffix(std::size_t len) const;
  /// Drop the first symbol (the left-shift used by Kautz-graph edges).
  KautzString drop_front() const;

  /// Concatenation; the junction symbols must differ.
  KautzString concat(const KautzString& tail) const;
  /// True when appending `symbol` keeps the string valid.
  bool can_append(std::uint8_t symbol) const;

  bool is_prefix_of(const KautzString& other) const;
  bool is_suffix_of(const KautzString& other) const;
  /// Length of the longest suffix of *this that is a prefix of `other`.
  /// This is the alignment used by FISSIONE's shift routing.
  std::size_t longest_suffix_prefix(const KautzString& other) const;

  /// Lexicographic order (the paper's relation "preceq"); a proper prefix
  /// sorts before its extensions.
  std::strong_ordering operator<=>(const KautzString& other) const;
  bool operator==(const KautzString& other) const = default;

  std::string to_string() const;

 private:
  void check_valid() const;

  std::uint8_t base_;
  std::vector<std::uint8_t> digits_;
};

/// FNV-1a over digits, for unordered containers.
struct KautzStringHash {
  std::size_t operator()(const KautzString& s) const;
};

std::ostream& operator<<(std::ostream& os, const KautzString& s);

}  // namespace armada::kautz
