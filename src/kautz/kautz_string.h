// Kautz strings: the identifier alphabet of FISSIONE and Armada.
//
// A Kautz string of base d is a sequence over the alphabet {0, 1, ..., d}
// (d+1 symbols) in which adjacent symbols differ (paper §3). KautzSpace(d,k)
// is the set of all such strings of length k; FISSIONE PeerIDs are
// variable-length base-2 Kautz strings and ObjectIDs are fixed-length ones.
//
// Representation: digits are bit-packed — 2 bits each for base <= 3, 4 bits
// each for base <= 15 — into a small inline array of 64-bit words, so the
// strings on the routing hot path (PeerIDs, ObjectIDs, and their
// shift-routing concatenations) never touch the heap and all slicing,
// alignment, and ordering operations are word-sized shift/mask loops.
// Strings longer than the inline capacity (96 digits at base <= 3) spill to
// a heap word array with identical semantics — the escape hatch for code
// that builds unusually deep labels.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.h"

namespace armada::kautz {

/// Immutable-by-convention Kautz string with checked invariants: every digit
/// is <= base() and adjacent digits differ. The empty string is valid (it is
/// the root label of the partition tree and a neutral prefix).
class KautzString {
 public:
  /// Empty base-2 string — non-explicit so aggregate members ({} init of
  /// StoredObject and friends) default cleanly.
  KautzString() : KautzString(std::uint8_t{2}) {}
  /// Empty string of the given base. Base must be in [1, 15] (alphabet
  /// size 2..16; the digit alphabet is '0'..'9' so practical bases are <= 9).
  explicit KautzString(std::uint8_t base);

  /// Build from digits; throws CheckError if not a valid Kautz string.
  KautzString(std::uint8_t base, const std::vector<std::uint8_t>& digits);

  /// Parse a textual form such as "0120" (digits '0'..'9'). Throws on
  /// malformed input or Kautz-invariant violation.
  static KautzString parse(std::string_view text, std::uint8_t base = 2);

  std::uint8_t base() const { return base_; }
  std::size_t length() const { return len_; }
  bool empty() const { return len_ == 0; }
  std::uint8_t digit(std::size_t i) const;
  std::uint8_t front() const;
  std::uint8_t back() const;
  /// Unpacked digit bytes (materialized; the packed words are the storage).
  std::vector<std::uint8_t> digits() const;

  /// Append one symbol; it must differ from back() and be <= base().
  void push_back(std::uint8_t symbol);
  void pop_back();

  /// Leading/trailing slices (always valid Kautz strings themselves).
  KautzString prefix(std::size_t len) const;
  KautzString suffix(std::size_t len) const;
  /// Drop the first symbol (the left-shift used by Kautz-graph edges).
  KautzString drop_front() const;

  /// Concatenation; the junction symbols must differ.
  KautzString concat(const KautzString& tail) const;
  /// True when appending `symbol` keeps the string valid.
  bool can_append(std::uint8_t symbol) const;

  bool is_prefix_of(const KautzString& other) const;
  bool is_suffix_of(const KautzString& other) const;
  /// Length of the longest suffix of *this that is a prefix of `other`.
  /// This is the alignment used by FISSIONE's shift routing.
  std::size_t longest_suffix_prefix(const KautzString& other) const;

  /// Lexicographic order (the paper's relation "preceq"); a proper prefix
  /// sorts before its extensions.
  std::strong_ordering operator<=>(const KautzString& other) const;
  bool operator==(const KautzString& other) const;

  std::string to_string() const;

 private:
  struct Raw {};  // tag: allocate zeroed storage for `len` digits, no checks

  KautzString(Raw, std::uint8_t base, std::size_t len);

  /// Mask selecting the low `nbits` bits (nbits <= 64).
  static constexpr std::uint64_t low_mask(std::size_t nbits) {
    return nbits >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << nbits) - 1;
  }

  std::size_t bits() const { return bits_; }
  /// log2 of bits per digit (1 at 2 bits, 2 at 4 bits): bits_ is always a
  /// power of two, so every digit<->bit index conversion is a shift, never a
  /// division — this is load-bearing for the routing hot path.
  std::size_t lg() const { return bits_ >> 1u; }
  /// Digits per 64-bit word (32 at 2 bits, 16 at 4 bits).
  std::size_t dpw() const { return 64u >> lg(); }
  std::size_t words_used() const {
    return ((std::size_t{len_} << lg()) + 63u) >> 6u;
  }
  std::size_t inline_capacity() const { return kInlineWords * dpw(); }
  const std::uint64_t* words() const {
    return spill_.empty() ? inline_.data() : spill_.data();
  }
  std::uint64_t* words() {
    return spill_.empty() ? inline_.data() : spill_.data();
  }
  /// Low `count` digits starting at digit `pos`, as the low bits of a word.
  /// Requires count <= dpw() and pos + count <= length().
  std::uint64_t chunk(std::size_t pos, std::size_t count) const;
  void set_digit(std::size_t i, std::uint8_t symbol);
  /// Digit-range equality: this[ai .. ai+n) == other[bi .. bi+n).
  static bool equal_slices(const KautzString& a, std::size_t ai,
                           const KautzString& b, std::size_t bi,
                           std::size_t n);
  void check_valid() const;

  static constexpr std::size_t kInlineWords = 3;

  std::uint8_t base_ = 2;
  std::uint8_t bits_ = 2;  ///< bits per digit: 2 (base <= 3) or 4
  std::uint32_t len_ = 0;
  /// Digit i lives in word i / dpw() at bit offset (i % dpw()) * bits(); the
  /// unused tail of the last word is kept zero so word compares are exact.
  std::array<std::uint64_t, kInlineWords> inline_{};
  /// Heap escape hatch: non-empty iff the string outgrew the inline words;
  /// then it holds *all* words and inline_ is ignored.
  std::vector<std::uint64_t> spill_;
};

// --- inline hot path --------------------------------------------------------
//
// Slicing, alignment, and ordering are the inner loop of shift routing and
// region matching; they are defined here so call sites compile down to the
// register-level shift/mask sequences with no out-of-line call.

inline KautzString::KautzString(std::uint8_t base) : base_(base) {
  ARMADA_CHECK_MSG(base_ >= 1 && base_ <= 15,
                   "base " << int(base_) << " outside the packable range");
  bits_ = base_ <= 3 ? 2 : 4;
}

inline KautzString::KautzString(Raw, std::uint8_t base, std::size_t len)
    : KautzString(base) {
  len_ = static_cast<std::uint32_t>(len);
  if (len > inline_capacity()) {
    spill_.assign((len + dpw() - 1) / dpw(), 0);
  }
}

inline std::uint64_t KautzString::chunk(std::size_t pos,
                                        std::size_t count) const {
  const std::size_t bitpos = pos << lg();
  const std::size_t w = bitpos >> 6;
  const std::size_t r = bitpos & 63u;
  const std::uint64_t* ws = words();
  std::uint64_t v = ws[w] >> r;
  if (r != 0 && w + 1 < words_used()) {
    v |= ws[w + 1] << (64 - r);
  }
  return v & low_mask(count << lg());
}

inline std::uint8_t KautzString::digit(std::size_t i) const {
  ARMADA_CHECK_MSG(i < len_, "index " << i << " out of range");
  return static_cast<std::uint8_t>(chunk(i, 1));
}

inline std::uint8_t KautzString::front() const {
  ARMADA_CHECK(len_ > 0);
  return static_cast<std::uint8_t>(chunk(0, 1));
}

inline std::uint8_t KautzString::back() const {
  ARMADA_CHECK(len_ > 0);
  return static_cast<std::uint8_t>(chunk(len_ - 1, 1));
}

inline bool KautzString::can_append(std::uint8_t symbol) const {
  if (symbol > base_) {
    return false;
  }
  return len_ == 0 || back() != symbol;
}

inline bool KautzString::equal_slices(const KautzString& a, std::size_t ai,
                                      const KautzString& b, std::size_t bi,
                                      std::size_t n) {
  const std::size_t step = a.dpw();
  std::size_t i = 0;
  while (i < n) {
    const std::size_t count = std::min(step, n - i);
    if (a.chunk(ai + i, count) != b.chunk(bi + i, count)) {
      return false;
    }
    i += count;
  }
  return true;
}

inline bool KautzString::is_prefix_of(const KautzString& other) const {
  ARMADA_CHECK(base_ == other.base_);
  if (len_ > other.len_) {
    return false;
  }
  return equal_slices(*this, 0, other, 0, len_);
}

inline bool KautzString::is_suffix_of(const KautzString& other) const {
  ARMADA_CHECK(base_ == other.base_);
  if (len_ > other.len_) {
    return false;
  }
  return equal_slices(*this, 0, other, other.len_ - len_, len_);
}

inline std::size_t KautzString::longest_suffix_prefix(
    const KautzString& other) const {
  ARMADA_CHECK(base_ == other.base_);
  const std::size_t max_len = std::min<std::size_t>(len_, other.len_);
  if (max_len <= dpw()) {
    // Single-word fast path (every base-2 PeerID: <= 32 digits per word).
    // `tail` holds this string's last max_len digits LSB-first, so candidate
    // t's suffix is tail >> ((max_len - t) digits) — already exactly t
    // digits, no mask needed; `other`'s t-digit prefix is head masked down.
    const std::uint64_t tail = chunk(len_ - max_len, max_len);
    const std::uint64_t head = other.chunk(0, max_len);
    for (std::size_t t = max_len; t > 0; --t) {
      if ((tail >> ((max_len - t) << lg())) == (head & low_mask(t << lg()))) {
        return t;
      }
    }
    return 0;
  }
  for (std::size_t len = max_len; len > 0; --len) {
    if (equal_slices(*this, len_ - len, other, 0, len)) {
      return len;
    }
  }
  return 0;
}

inline std::strong_ordering KautzString::operator<=>(
    const KautzString& other) const {
  ARMADA_CHECK(base_ == other.base_);
  // Whole-word scan: both zero tails make the stored words exact, so the
  // lowest differing bit identifies the first differing digit directly
  // (digits are packed LSB-first in position order). A divergence at a digit
  // index past the shorter string's end is that zero tail against the longer
  // string's real digits — the common prefix matched, length decides.
  const std::size_t common = std::min<std::size_t>(len_, other.len_);
  const std::uint64_t* a = words();
  const std::uint64_t* b = other.words();
  if ((std::uint32_t{len_} | other.len_) <= dpw()) {
    // Single-word fast path (every base-2 PeerID): one xor decides.
    const std::uint64_t x = a[0] ^ b[0];
    if (x != 0) {
      const auto bit = static_cast<std::size_t>(std::countr_zero(x));
      const std::size_t shift = (bit >> lg()) << lg();
      if ((bit >> lg()) < common) {
        return ((a[0] >> shift) & low_mask(bits_)) <=>
               ((b[0] >> shift) & low_mask(bits_));
      }
    }
    return std::uint32_t{len_} <=> std::uint32_t{other.len_};
  }
  const std::size_t nw = std::min(words_used(), other.words_used());
  for (std::size_t i = 0; i < nw; ++i) {
    if (a[i] != b[i]) {
      const auto bit =
          static_cast<std::size_t>(std::countr_zero(a[i] ^ b[i]));
      const std::size_t shift = (bit >> lg()) << lg();
      const std::size_t d = (i << (6u - lg())) + (bit >> lg());
      if (d >= common) {
        break;
      }
      const std::uint64_t da = (a[i] >> shift) & low_mask(bits_);
      const std::uint64_t db = (b[i] >> shift) & low_mask(bits_);
      return da <=> db;
    }
  }
  return std::uint32_t{len_} <=> std::uint32_t{other.len_};
}

inline bool KautzString::operator==(const KautzString& other) const {
  // Storage-independent (an inline string equals a once-spilled one):
  // compare the used words only.
  if (base_ != other.base_ || len_ != other.len_) {
    return false;
  }
  const std::uint64_t* a = words();
  const std::uint64_t* b = other.words();
  return std::equal(a, a + words_used(), b);
}

inline KautzString KautzString::prefix(std::size_t len) const {
  ARMADA_CHECK(len <= len_);
  KautzString out(Raw{}, base_, len);
  const std::size_t nw = out.words_used();
  const std::uint64_t* src = words();
  std::uint64_t* dst = out.words();
  for (std::size_t i = 0; i < nw; ++i) {
    dst[i] = src[i];
  }
  if (nw > 0) {
    const std::size_t tail = len - (nw - 1) * dpw();
    dst[nw - 1] &= low_mask(tail << lg());
  }
  return out;
}

inline KautzString KautzString::suffix(std::size_t len) const {
  ARMADA_CHECK(len <= len_);
  KautzString out(Raw{}, base_, len);
  const std::size_t shift = (len_ - len) << lg();
  const std::size_t ws = shift >> 6;
  const std::size_t rs = shift & 63u;
  const std::size_t src_words = words_used();
  const std::uint64_t* src = words();
  std::uint64_t* dst = out.words();
  const std::size_t nw = out.words_used();
  for (std::size_t i = 0; i < nw; ++i) {
    std::uint64_t v = src[i + ws] >> rs;
    if (rs != 0 && i + ws + 1 < src_words) {
      v |= src[i + ws + 1] << (64 - rs);
    }
    dst[i] = v;
  }
  if (nw > 0) {
    const std::size_t tail = len - (nw - 1) * dpw();
    dst[nw - 1] &= low_mask(tail << lg());
  }
  return out;
}

inline KautzString KautzString::drop_front() const {
  ARMADA_CHECK(len_ > 0);
  return suffix(len_ - 1);
}

inline KautzString KautzString::concat(const KautzString& tail) const {
  ARMADA_CHECK(base_ == tail.base_);
  if (len_ > 0 && tail.len_ > 0) {
    ARMADA_CHECK_MSG(back() != tail.front(),
                     "repeated symbol at the concat junction");
  }
  KautzString out(Raw{}, base_, len_ + tail.len_);
  const std::size_t my_words = words_used();
  const std::uint64_t* src = words();
  std::uint64_t* dst = out.words();
  const std::size_t dst_words = out.words_used();
  for (std::size_t i = 0; i < my_words; ++i) {
    dst[i] = src[i];
  }
  const std::size_t shift = std::size_t{len_} << lg();
  const std::size_t ws = shift >> 6;
  const std::size_t rs = shift & 63u;
  const std::uint64_t* ts = tail.words();
  for (std::size_t i = 0; i < tail.words_used(); ++i) {
    dst[i + ws] |= ts[i] << rs;
    if (rs != 0 && i + ws + 1 < dst_words) {
      dst[i + ws + 1] |= ts[i] >> (64 - rs);
    }
  }
  return out;
}

/// FNV-1a over digits, for unordered containers.
struct KautzStringHash {
  std::size_t operator()(const KautzString& s) const;
};

std::ostream& operator<<(std::ostream& os, const KautzString& s);

}  // namespace armada::kautz
