// Kautz regions: lexicographic intervals of KautzSpace (paper Definition 1).
#pragma once

#include <vector>

#include "kautz/kautz_string.h"

namespace armada::kautz {

/// Inclusive interval <lo, hi> of KautzSpace(base, k): all length-k Kautz
/// strings s with lo <= s <= hi. Both bounds have the same base and length.
class KautzRegion {
 public:
  KautzRegion(KautzString lo, KautzString hi);

  const KautzString& lo() const { return lo_; }
  const KautzString& hi() const { return hi_; }
  std::size_t length() const { return lo_.length(); }
  std::uint8_t base() const { return lo_.base(); }

  bool contains(const KautzString& s) const;

  /// Number of strings in the region (requires 64-bit-countable space).
  std::uint64_t size() const;

  /// Longest common prefix of lo and hi ("ComT" in the paper; may be empty).
  KautzString common_prefix() const;

  /// True iff some string of the region starts with `prefix`.
  /// (prefix.length() may be anything up to the region length.)
  bool intersects_prefix(const KautzString& prefix) const;

  /// Split into 1..3 subregions, each with a nonempty common prefix, whose
  /// disjoint union is this region (paper §4.2). Regions are returned in
  /// lexicographic order.
  std::vector<KautzRegion> split_common_prefix() const;

  /// The subregion of strings with the given prefix; requires intersection.
  KautzRegion clamp_to_prefix(const KautzString& prefix) const;

  bool operator==(const KautzRegion& other) const = default;

  std::string to_string() const;

 private:
  KautzString lo_;
  KautzString hi_;
};

}  // namespace armada::kautz
