// P2P data management: the paper's introductory example — the range query
// "70 <= score <= 80" over a distributed student-score table (§1).
//
// Demonstrates that the query delay is independent of how many peers hold
// answers: the same query is run against three selectivities.
#include <cmath>
#include <cstdio>

#include "armada/armada.h"
#include "fissione/network.h"
#include "util/rng.h"

int main() {
  using namespace armada;

  auto net = fissione::FissioneNetwork::build(1000, /*seed=*/7);
  auto index = core::ArmadaIndex::single(net, {0.0, 100.0});

  // Scores clustered around 65 (sum of uniforms ~ bell shape).
  Rng rng(8);
  const int kStudents = 20000;
  for (int i = 0; i < kStudents; ++i) {
    double score = 0.0;
    for (int j = 0; j < 4; ++j) {
      score += rng.next_double(0.0, 25.0);
    }
    score = 0.3 * score + 0.7 * rng.next_double(40.0, 90.0);
    index.publish(std::min(100.0, score));
  }

  std::printf("score database: %d records on %zu peers (log2 N = %.1f)\n\n",
              kStudents, net.num_peers(), std::log2(1000.0));

  struct Query {
    double lo, hi;
    const char* label;
  };
  for (const Query q : {Query{70.0, 80.0, "the paper's 70<=score<=80"},
                        Query{59.5, 60.5, "a narrow band"},
                        Query{0.0, 100.0, "every record"}}) {
    const auto r = index.range_query(net.random_peer(), q.lo, q.hi);
    std::printf("[%5.1f, %5.1f] (%s):\n", q.lo, q.hi, q.label);
    std::printf("  %zu records from %llu peers, delay %.0f hops, %llu "
                "messages\n",
                r.matches.size(),
                static_cast<unsigned long long>(r.stats.dest_peers),
                r.stats.delay,
                static_cast<unsigned long long>(r.stats.messages));
  }
  std::printf("\nnote: delay stays below 2*log2 N = %.1f for every "
              "selectivity — the delay-bounded property.\n",
              2 * std::log2(1000.0));
  return 0;
}
