// Top-k search: the extension the paper lists as future work (§6),
// implemented over Armada's order-preserving naming. Because zones partition
// the value axis, a top-k query walks zones from the top of the range and
// stops as soon as k results are in hand.
#include <cmath>
#include <cstdio>

#include "armada/armada.h"
#include "fissione/network.h"
#include "util/rng.h"

int main() {
  using namespace armada;

  auto net = fissione::FissioneNetwork::build(600, /*seed=*/21);
  auto index = core::ArmadaIndex::single(net, {0.0, 1000.0});

  Rng rng(22);
  for (int i = 0; i < 15000; ++i) {
    index.publish(rng.next_double(0.0, 1000.0));
  }

  std::printf("auction catalog: 15000 bids on %zu peers\n\n", net.num_peers());

  for (const std::size_t k : {3u, 10u, 50u}) {
    const auto r = index.top_k(net.random_peer(), 250.0, 750.0, k);
    std::printf("top-%-2zu bids in [250, 750]: visited %llu peers, "
                "%llu messages\n",
                k, static_cast<unsigned long long>(r.stats.dest_peers),
                static_cast<unsigned long long>(r.stats.messages));
    std::printf("  best three:");
    for (std::size_t i = 0; i < std::min<std::size_t>(3, r.handles.size());
         ++i) {
      std::printf(" %.3f", index.attributes(r.handles[i])[0]);
    }
    std::printf("\n");
  }

  // Contrast with the full range query: same answers via PIRA touch every
  // peer intersecting the range.
  const auto full = index.range_query(net.random_peer(), 250.0, 750.0);
  std::printf("\nfull range scan of [250, 750]: %llu peers, %llu messages — "
              "top-k's early stop is the win\n",
              static_cast<unsigned long long>(full.stats.dest_peers),
              static_cast<unsigned long long>(full.stats.messages));
  return 0;
}
