// armada_cli: a configurable experiment driver over the public API.
//
//   ./armada_cli --peers 2000 --objects 4000 --queries 500 --range 50
//                --seed 42 [--attrs 2] [--churn 200] [--zipf 1.0]
//
// Builds a FISSIONE overlay, publishes a workload, optionally churns the
// membership, runs range queries, and prints the paper's metrics.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "armada/armada.h"
#include "fissione/network.h"
#include "sim/metrics.h"
#include "sim/workload.h"
#include "util/table.h"

namespace {

std::map<std::string, double> parse_args(int argc, char** argv) {
  // Defaults.
  std::map<std::string, double> opts{
      {"peers", 2000},  {"objects", 4000}, {"queries", 500}, {"range", 50},
      {"seed", 42},     {"attrs", 1},      {"churn", 0},     {"zipf", 0},
  };
  for (int i = 1; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0 || !opts.contains(key.substr(2))) {
      std::fprintf(stderr, "unknown option %s\n", key.c_str());
      std::exit(2);
    }
    opts[key.substr(2)] = std::atof(argv[i + 1]);
  }
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace armada;
  const auto opts = parse_args(argc, argv);
  const auto n = static_cast<std::size_t>(opts.at("peers"));
  const auto objects = static_cast<std::size_t>(opts.at("objects"));
  const auto queries = static_cast<int>(opts.at("queries"));
  const double range = opts.at("range");
  const auto seed = static_cast<std::uint64_t>(opts.at("seed"));
  const auto attrs = static_cast<std::size_t>(opts.at("attrs"));
  const auto churn = static_cast<std::size_t>(opts.at("churn"));
  const double zipf = opts.at("zipf");

  auto net = fissione::FissioneNetwork::build(n, seed);
  const kautz::Box domain(attrs, kautz::Interval{0.0, 1000.0});
  auto index = attrs == 1 ? core::ArmadaIndex::single(net, domain[0])
                          : core::ArmadaIndex::multi(net, domain);

  Rng rng(seed + 1);
  sim::ZipfValues zipf_gen({0.0, 1000.0}, 200, zipf > 0 ? zipf : 1.0,
                           Rng(seed + 2));
  for (std::size_t i = 0; i < objects; ++i) {
    std::vector<double> p(attrs);
    for (auto& v : p) {
      v = zipf > 0 ? zipf_gen.next() : rng.next_double(0.0, 1000.0);
    }
    index.publish(p);
  }

  for (std::size_t i = 0; i < churn; ++i) {
    net.join();
    const auto& alive = net.alive_peers();
    net.leave(alive[rng.next_index(alive.size())]);
  }

  const double log_n = std::log2(static_cast<double>(net.num_peers()));
  sim::MetricSet metrics(log_n);
  sim::BoxWorkload workload(domain, std::vector<double>(attrs, range),
                            Rng(seed + 3));
  for (int q = 0; q < queries; ++q) {
    const auto box = workload.next();
    const auto r = attrs == 1
                       ? index.range_query(net.random_peer(), box[0].lo,
                                           box[0].hi)
                       : index.box_query(net.random_peer(), box);
    metrics.add(r.stats);
  }

  Table table({"Metric", "Mean", "Max"});
  table.add_row({"Delay (hops)", Table::cell(metrics.delay().mean()),
                 Table::cell(metrics.delay().max(), 0)});
  table.add_row({"Messages", Table::cell(metrics.messages().mean()),
                 Table::cell(metrics.messages().max(), 0)});
  table.add_row({"Destpeers", Table::cell(metrics.dest_peers().mean()),
                 Table::cell(metrics.dest_peers().max(), 0)});
  table.add_row({"Results", Table::cell(metrics.results().mean()),
                 Table::cell(metrics.results().max(), 0)});
  std::printf("N=%zu peers (log2 N = %.2f), %zu objects, %d queries, "
              "range %.0f, attrs %zu, churn %zu, %s values\n\n%s",
              net.num_peers(), log_n, objects, queries, range, attrs, churn,
              zipf > 0 ? "zipf" : "uniform", table.to_text().c_str());
  std::printf("\ndelay bound: max %.0f vs 2*log2 N = %.1f\n",
              metrics.delay().max(), 2 * log_n);
  return 0;
}
