// Grid information service: the paper's multi-attribute example —
// "1GB <= Memory <= 4GB and 50GB <= disk <= 200GB" (§1), answered by MIRA.
#include <cmath>
#include <cstdio>

#include "armada/armada.h"
#include "fissione/network.h"
#include "util/rng.h"

int main() {
  using namespace armada;

  auto net = fissione::FissioneNetwork::build(800, /*seed=*/11);
  // Attribute 0: memory in MB [0, 16384]; attribute 1: disk in GB [0, 2000].
  const kautz::Box domain{{0.0, 16384.0}, {0.0, 2000.0}};
  auto index = core::ArmadaIndex::multi(net, domain);

  // A fleet of machines with assorted configurations.
  Rng rng(12);
  const int kMachines = 12000;
  for (int i = 0; i < kMachines; ++i) {
    const double mem_gb = std::exp2(static_cast<double>(rng.next_int(0, 4)));
    const double memory_mb =
        std::min(16384.0, 1024.0 * mem_gb + rng.next_double(0.0, 64.0));
    const double disk_gb = rng.next_double(10.0, 2000.0);
    index.publish({memory_mb, disk_gb});
  }

  std::printf("grid info service: %d machines on %zu peers\n\n", kMachines,
              net.num_peers());

  // The paper's query: 1GB <= memory <= 4GB and 50GB <= disk <= 200GB.
  const kautz::Box query{{1024.0, 4096.0}, {50.0, 200.0}};
  const auto r = index.box_query(net.random_peer(), query);

  std::printf("query: 1GB <= memory <= 4GB and 50GB <= disk <= 200GB\n");
  std::printf("  %zu machines matched, %llu peers scanned, delay %.0f hops "
              "(log2 N = %.1f), %llu messages\n",
              r.matches.size(),
              static_cast<unsigned long long>(r.stats.dest_peers),
              r.stats.delay, std::log2(800.0),
              static_cast<unsigned long long>(r.stats.messages));
  for (std::size_t i = 0; i < std::min<std::size_t>(5, r.matches.size());
       ++i) {
    const auto& m = index.attributes(r.matches[i]);
    std::printf("  candidate: %.0f MB memory, %.0f GB disk\n", m[0], m[1]);
  }

  // A much broader query keeps the same delay bound: delay-bounded even
  // when the answer set is two orders of magnitude larger.
  const kautz::Box broad{{0.0, 16384.0}, {0.0, 2000.0}};
  const auto r2 = index.box_query(net.random_peer(), broad);
  std::printf("\nbroad query (everything): %zu machines, delay %.0f hops — "
              "same bound, %llux the answers\n",
              r2.matches.size(), r2.stats.delay,
              static_cast<unsigned long long>(
                  r2.matches.size() / std::max<std::size_t>(1, r.matches.size())));
  return 0;
}
