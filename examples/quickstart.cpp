// Quickstart: build a FISSIONE overlay, layer an Armada index on it,
// publish values, and run a delay-bounded range query.
//
//   $ ./quickstart
#include <cmath>
#include <cstdio>

#include "armada/armada.h"
#include "fissione/network.h"
#include "util/rng.h"

int main() {
  using namespace armada;

  // 1. A 256-peer FISSIONE overlay (the constant-degree DHT of the paper).
  auto net = fissione::FissioneNetwork::build(256, /*seed=*/1);
  std::printf("overlay: %zu peers, average degree %.2f, "
              "max PeerID length %lld (2*log2 N = %.1f)\n",
              net.num_peers(), net.average_degree(),
              static_cast<long long>(net.peer_id_length_histogram().max()),
              2 * std::log2(256.0));

  // 2. An Armada index for one attribute over [0, 1000]. Armada is layered:
  //    it changes nothing about the DHT underneath.
  auto index = core::ArmadaIndex::single(net, {0.0, 1000.0});

  // 3. Publish objects; Single_hash places value-adjacent objects on
  //    related peers.
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    index.publish(rng.next_double(0.0, 1000.0));
  }

  // 4. A range query from a random peer. PIRA reaches every peer holding
  //    answers within |PeerID| < 2*log2 N hops.
  const auto issuer = net.random_peer();
  const auto result = index.range_query(issuer, 420.0, 480.0);

  std::printf("query [420, 480]: %zu matches from %llu peers\n",
              result.matches.size(),
              static_cast<unsigned long long>(result.stats.dest_peers));
  std::printf("delay %.0f hops (issuer PeerID length %zu, log2 N = %.1f), "
              "%llu messages\n",
              result.stats.delay, net.peer(issuer).peer_id.length(),
              std::log2(256.0),
              static_cast<unsigned long long>(result.stats.messages));
  for (std::size_t i = 0; i < std::min<std::size_t>(5, result.matches.size());
       ++i) {
    std::printf("  match: value %.2f\n",
                index.attributes(result.matches[i])[0]);
  }
  return 0;
}
